//! Level 1: the SRC as a SystemC 2.0 **hierarchical channel** (the
//! paper's Figure 5).
//!
//! The SRC algorithm is encapsulated in a channel implementing the three
//! interfaces of the paper — `SRC_CTRL` (configuration), `SampleWriteIF`
//! (producer side) and `SampleReadIF` (consumer side). Producer and
//! consumer are *independent threads* that write and read samples with
//! their own frequencies, unlike the sequential C++ model.

use crate::algo::AlgoSrc;
use crate::config::SrcConfig;
use crate::models::SimRun;
use scflow_kernel::{Fifo, Kernel, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The SRC as a hierarchical channel.
///
/// Clone the handle into producer/consumer processes; the conversion runs
/// in an internal thread spawned at construction.
#[derive(Clone)]
pub struct SrcChannel {
    input: Fifo<i16>,
    output: Fifo<i16>,
    algo: Rc<RefCell<AlgoSrc>>,
}

impl SrcChannel {
    /// Creates the channel and spawns its internal conversion thread.
    pub fn new(kernel: &Kernel, cfg: &SrcConfig) -> Self {
        let input = kernel.fifo::<i16>("src.in", 8);
        let output = kernel.fifo::<i16>("src.out", 8);
        let algo = Rc::new(RefCell::new(AlgoSrc::new(cfg)));
        let ch = SrcChannel {
            input: input.clone(),
            output: output.clone(),
            algo: algo.clone(),
        };
        kernel.spawn("src.channel", {
            let k = kernel.clone();
            async move {
                loop {
                    let need = algo.borrow().inputs_needed();
                    for _ in 0..need {
                        let s = input.read(&k).await;
                        algo.borrow_mut().push_input(s);
                    }
                    let y = algo.borrow_mut().output_sample();
                    output.write(&k, y).await;
                }
            }
        });
        ch
    }

    /// `SampleWriteIF`: blocking sample write (producer side).
    pub async fn write_sample(&self, kernel: &Kernel, sample: i16) {
        self.input.write(kernel, sample).await;
    }

    /// `SampleReadIF`: blocking sample read (consumer side).
    pub async fn read_sample(&self, kernel: &Kernel) -> i16 {
        self.output.read(kernel).await
    }

    /// `SampleReadIF` (non-blocking): the next output sample, if one is
    /// ready.
    pub fn try_read_sample(&self) -> Option<i16> {
        self.output.try_read()
    }

    /// `SRC_CTRL`: switches the operation mode (resets the converter
    /// state, like reprogramming the rate pair).
    pub fn set_mode(&self, cfg: &SrcConfig) {
        *self.algo.borrow_mut() = AlgoSrc::new(cfg);
    }
}

/// Runs the channel model's testbench: a producer writing `input` at the
/// input rate and a consumer reading at the output rate, both in simulated
/// real time.
pub fn run_channel_model(cfg: &SrcConfig, input: &[i16]) -> SimRun {
    let kernel = Kernel::new();
    let channel = SrcChannel::new(&kernel, cfg);
    let expected = crate::verify::GoldenVectors::generate(cfg, input.to_vec()).len();
    let collected: Rc<RefCell<Vec<i16>>> = Rc::new(RefCell::new(Vec::new()));
    let times: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));

    let in_period = SimTime::from_ps(cfg.in_period_ps());
    let out_period = SimTime::from_ps(cfg.out_period_ps());

    kernel.spawn("producer", {
        let (k, ch) = (kernel.clone(), channel.clone());
        let input = input.to_vec();
        async move {
            for s in input {
                k.wait_time(in_period).await;
                ch.input.write(&k, s).await;
            }
        }
    });
    kernel.spawn("consumer", {
        let (k, ch, collected) = (kernel.clone(), channel.clone(), collected.clone());
        let times = times.clone();
        async move {
            for _ in 0..expected {
                k.wait_time(out_period).await;
                let y = ch.output.read(&k).await;
                collected.borrow_mut().push(y);
                times.borrow_mut().push(k.now());
            }
            k.stop();
        }
    });

    kernel.run();
    SimRun {
        outputs: Rc::try_unwrap(collected)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
        sim_time: kernel.now(),
        clock_cycles: None,
        stats: Some(kernel.stats()),
        output_times: Rc::try_unwrap(times)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
    }
}
