//! Level 1b: the **refined hierarchical channel** (the paper's Figure 6).
//!
//! The channel's C++ code is split into three submodules along the class
//! structure — an input-buffer module, a polyphase-coefficient module and
//! a main module with its own functional thread. Synchronisation uses
//! explicit events (`sc_event`), and the method calls of the C++ model
//! become interface method calls between the submodules.

use crate::algo::{wrap_to, InputBuffer, PolyphaseFilter};
use crate::config::SrcConfig;
use crate::models::SimRun;
use scflow_kernel::{Event, Kernel, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The input-buffer submodule: owns the ring buffer, fires
/// `sample_written` after each write (the explicit `sc_event` of the
/// refinement step).
pub struct InputBufferModule {
    buffer: RefCell<InputBuffer>,
    available: RefCell<u32>,
    sample_written: Event,
}

impl InputBufferModule {
    /// Creates the submodule.
    pub fn new(kernel: &Kernel) -> Rc<Self> {
        Rc::new(InputBufferModule {
            buffer: RefCell::new(InputBuffer::new()),
            available: RefCell::new(0),
            sample_written: kernel.event("ibuf.sample_written"),
        })
    }

    /// Interface method: store a sample and notify.
    pub fn write(&self, sample: i16) {
        self.buffer.borrow_mut().push(sample);
        *self.available.borrow_mut() += 1;
        self.sample_written.notify_delta();
    }

    /// Interface method: samples available since the last consume.
    pub fn available(&self) -> u32 {
        *self.available.borrow()
    }

    /// Interface method: consume `n` availability credits.
    pub fn consume(&self, n: u32) {
        *self.available.borrow_mut() -= n;
    }

    /// Interface method: the `TAPS` most recent samples, newest first.
    pub fn recent(&self) -> Vec<i16> {
        self.buffer.borrow_mut().iter_recent().collect()
    }

    /// The notification event.
    pub fn sample_written(&self) -> &Event {
        &self.sample_written
    }
}

/// The coefficient submodule: wraps the polyphase ROM behind an interface
/// method.
pub struct CoefModule {
    filter: PolyphaseFilter,
}

impl CoefModule {
    /// Designs the coefficients for `cfg`.
    pub fn new(cfg: &SrcConfig) -> Rc<Self> {
        Rc::new(CoefModule {
            filter: PolyphaseFilter::design(cfg),
        })
    }

    /// Interface method: one coefficient.
    pub fn coefficient(&self, phase: u32, tap: u32) -> i16 {
        self.filter.rom().coefficient(phase, tap)
    }
}

/// Runs the refined-channel model's testbench (same stimulus contract as
/// [`run_channel_model`](crate::models::channel::run_channel_model)).
pub fn run_refined_model(cfg: &SrcConfig, input: &[i16]) -> SimRun {
    let kernel = Kernel::new();
    let expected = crate::verify::GoldenVectors::generate(cfg, input.to_vec()).len();

    let ibuf = InputBufferModule::new(&kernel);
    let coef = CoefModule::new(cfg);
    let out_fifo = kernel.fifo::<i16>("src.out", 8);
    let in_fifo = kernel.fifo::<i16>("src.in", 8);

    // Demand credits: the main module announces how many samples it needs;
    // the input stage must not run ahead (the ring buffer holds exactly
    // the samples the convolution expects).
    let demand: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let demand_event = kernel.event("src.demand");

    // Input stage thread: moves samples from the write interface into the
    // buffer submodule, one per outstanding demand credit.
    kernel.spawn("src.input_stage", {
        let (k, in_fifo, ibuf) = (kernel.clone(), in_fifo.clone(), ibuf.clone());
        let (demand, demand_event) = (demand.clone(), demand_event.clone());
        async move {
            loop {
                while *demand.borrow() == 0 {
                    k.wait(&demand_event).await;
                }
                let s = in_fifo.read(&k).await;
                *demand.borrow_mut() -= 1;
                ibuf.write(s);
            }
        }
    });

    // Main thread: the SRC's functional behaviour, synchronised by
    // explicit events and using interface method calls on the submodules.
    kernel.spawn("src.main", {
        let (k, ibuf, coef, out_fifo) = (
            kernel.clone(),
            ibuf.clone(),
            coef.clone(),
            out_fifo.clone(),
        );
        let (demand, demand_event) = (demand.clone(), demand_event.clone());
        let cfg = cfg.clone();
        async move {
            let mut acc = 0u32;
            loop {
                let (new_acc, consume, phase) = cfg.advance(acc);
                *demand.borrow_mut() += consume;
                if consume > 0 {
                    demand_event.notify_delta();
                }
                while ibuf.available() < consume {
                    k.wait(ibuf.sample_written()).await;
                }
                ibuf.consume(consume);
                acc = new_acc;
                // Convolution via interface method calls, tap by tap.
                let samples = ibuf.recent();
                let mut macc: i64 = 0;
                for (tap, &x) in samples.iter().enumerate() {
                    let c = coef.coefficient(phase, tap as u32);
                    macc += i64::from(x) * i64::from(c);
                }
                let y = (wrap_to(macc, SrcConfig::ACC_BITS) >> SrcConfig::COEF_FRAC_BITS) as i16;
                out_fifo.write(&k, y).await;
            }
        }
    });

    let collected: Rc<RefCell<Vec<i16>>> = Rc::new(RefCell::new(Vec::new()));
    let times: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
    let in_period = SimTime::from_ps(cfg.in_period_ps());
    let out_period = SimTime::from_ps(cfg.out_period_ps());

    kernel.spawn("producer", {
        let (k, in_fifo) = (kernel.clone(), in_fifo.clone());
        let input = input.to_vec();
        async move {
            for s in input {
                k.wait_time(in_period).await;
                in_fifo.write(&k, s).await;
            }
        }
    });
    kernel.spawn("consumer", {
        let (k, out_fifo, collected) = (kernel.clone(), out_fifo.clone(), collected.clone());
        let times = times.clone();
        async move {
            for _ in 0..expected {
                k.wait_time(out_period).await;
                let y = out_fifo.read(&k).await;
                collected.borrow_mut().push(y);
                times.borrow_mut().push(k.now());
            }
            k.stop();
        }
    });

    kernel.run();
    SimRun {
        outputs: Rc::try_unwrap(collected)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
        sim_time: kernel.now(),
        clock_cycles: None,
        stats: Some(kernel.stats()),
        output_times: Rc::try_unwrap(times)
            .map(RefCell::into_inner)
            .unwrap_or_default(),
    }
}
