//! Audio stimulus generation and signal-quality measurement for the
//! testbenches and examples.

use std::f64::consts::PI;

/// Generates `n` samples of a sine wave at `freq` Hz sampled at `rate` Hz
/// with peak `amplitude`.
pub fn sine(n: usize, freq: f64, rate: f64, amplitude: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / rate;
            (amplitude * (2.0 * PI * freq * t).sin()).round() as i16
        })
        .collect()
}

/// Generates a linear frequency sweep from `f0` to `f1` Hz over `n`
/// samples at `rate` Hz.
pub fn sweep(n: usize, f0: f64, f1: f64, rate: f64, amplitude: f64) -> Vec<i16> {
    let dur = n as f64 / rate;
    (0..n)
        .map(|i| {
            let t = i as f64 / rate;
            let phase = 2.0 * PI * (f0 * t + (f1 - f0) * t * t / (2.0 * dur));
            (amplitude * phase.sin()).round() as i16
        })
        .collect()
}

/// Deterministic pseudo-random samples in `[-amplitude, amplitude]`
/// (xorshift; no external RNG needed in library code).
pub fn noise(n: usize, amplitude: i16, seed: u64) -> Vec<i16> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let span = 2 * i64::from(amplitude) + 1;
            let r = ((state >> 16) % span as u64) as i64;
            (r - i64::from(amplitude)) as i16
        })
        .collect()
}

/// Measures the signal-to-noise-and-distortion ratio of `samples` against
/// a single sinusoid of known frequency `freq` at `rate` Hz, in dB.
///
/// Fits amplitude and phase by correlation, subtracts the fitted tone, and
/// reports `10*log10(signal power / residual power)`. Used by the audio
/// examples to show that the SRC preserves quality.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn snr_db(samples: &[i16], freq: f64, rate: f64) -> f64 {
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let (mut cs, mut ss) = (0.0f64, 0.0f64);
    for (i, &s) in samples.iter().enumerate() {
        let w = 2.0 * PI * freq * i as f64 / rate;
        cs += f64::from(s) * w.cos();
        ss += f64::from(s) * w.sin();
    }
    let a = 2.0 * cs / n;
    let b = 2.0 * ss / n;
    let mut signal_power = 0.0f64;
    let mut noise_power = 0.0f64;
    for (i, &s) in samples.iter().enumerate() {
        let w = 2.0 * PI * freq * i as f64 / rate;
        let fit = a * w.cos() + b * w.sin();
        signal_power += fit * fit;
        let r = f64::from(s) - fit;
        noise_power += r * r;
    }
    if noise_power <= 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal_power / noise_power).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_peaks_near_amplitude() {
        let s = sine(4410, 1000.0, 44100.0, 12000.0);
        let max = s.iter().copied().max().unwrap();
        assert!((11900..=12000).contains(&max), "max {max}");
    }

    #[test]
    fn pure_sine_has_high_snr() {
        let s = sine(8192, 997.0, 44100.0, 10000.0);
        let snr = snr_db(&s, 997.0, 44100.0);
        assert!(snr > 45.0, "snr {snr}");
    }

    #[test]
    fn noisy_sine_has_lower_snr() {
        let mut s = sine(8192, 997.0, 44100.0, 10000.0);
        let nz = noise(8192, 1000, 42);
        for (a, b) in s.iter_mut().zip(nz) {
            *a = a.saturating_add(b);
        }
        let snr = snr_db(&s, 997.0, 44100.0);
        assert!((10.0..40.0).contains(&snr), "snr {snr}");
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let a = noise(1000, 500, 7);
        let b = noise(1000, 500, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-500..=500).contains(&v)));
        assert_ne!(a, noise(1000, 500, 8));
    }

    #[test]
    fn sweep_spans_lengths() {
        let s = sweep(1000, 20.0, 20_000.0, 48_000.0, 8000.0);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().any(|&v| v > 7000));
    }
}
