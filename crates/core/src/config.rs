//! SRC configuration: rates, filter geometry, fixed-point formats.

/// Static configuration of the sample-rate converter.
///
/// The geometry follows the paper's design class (car-multimedia stereo
/// audio, bandlimited interpolation per the Digital Audio Resampling Home
/// Page the paper cites): a 32-phase polyphase filter with 16 taps per
/// phase, 16-bit samples and coefficients, and a 24-entry input ring
/// buffer.
///
/// The conversion ratio is realised with a **binary phase accumulator**:
/// every output sample advances input time by
/// `step / 2^PHASE_FRAC_BITS` input samples; the integer overflow of the
/// accumulator is the number of input samples to consume, and the top
/// [`PHASE_BITS`](SrcConfig::PHASE_BITS) fraction bits select the
/// polyphase phase. Every abstraction level uses this same accumulator,
/// which is what makes bit-accurate cross-level comparison possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrcConfig {
    /// Input sampling rate in Hz.
    pub in_rate: u32,
    /// Output sampling rate in Hz.
    pub out_rate: u32,
    /// Phase-accumulator step: `round(2^24 * in_rate / out_rate)`.
    pub step: u32,
}

impl SrcConfig {
    /// Taps per polyphase phase.
    pub const TAPS: usize = 16;
    /// Number of polyphase phases.
    pub const PHASES: usize = 32;
    /// Input ring-buffer depth (deliberately not a power of two, like the
    /// paper's design whose corner-case buffer bug the flow carried to
    /// gate level).
    pub const BUFFER: usize = 24;
    /// Fraction bits of the phase accumulator.
    pub const PHASE_FRAC_BITS: u32 = 24;
    /// Bits selecting the phase (top bits of the accumulator fraction).
    pub const PHASE_BITS: u32 = 5;
    /// Sample width in bits (signed).
    pub const SAMPLE_BITS: u32 = 16;
    /// Coefficient width in bits (signed).
    pub const COEF_BITS: u32 = 16;
    /// Coefficient fraction bits (Q1.14).
    pub const COEF_FRAC_BITS: u32 = 14;
    /// Accumulator width the *optimised* models use (exact worst case:
    /// 16+16-bit products summed over 16 taps needs 36 bits).
    pub const ACC_BITS: u32 = 36;
    /// Accumulator width the *unoptimised* behavioural model uses (the
    /// paper's "bit-widths chosen too pessimistic").
    pub const ACC_BITS_PESSIMISTIC: u32 = 40;

    /// Creates a configuration for an arbitrary rate pair.
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero or the ratio exceeds the supported
    /// range (at most ~2 input samples per output, i.e. `in_rate <
    /// 2*out_rate`, enough for all audio-rate conversions).
    pub fn new(in_rate: u32, out_rate: u32) -> Self {
        assert!(in_rate > 0 && out_rate > 0, "rates must be non-zero");
        let step = ((u64::from(in_rate) << Self::PHASE_FRAC_BITS) as f64 / f64::from(out_rate))
            .round() as u64;
        assert!(
            step < (2u64 << Self::PHASE_FRAC_BITS),
            "in_rate must be below 2x out_rate"
        );
        SrcConfig {
            in_rate,
            out_rate,
            step: step as u32,
        }
    }

    /// CD to DVD: 44.1 kHz → 48 kHz (the paper's headline use case).
    pub fn cd_to_dvd() -> Self {
        SrcConfig::new(44_100, 48_000)
    }

    /// DVD to CD: 48 kHz → 44.1 kHz.
    pub fn dvd_to_cd() -> Self {
        SrcConfig::new(48_000, 44_100)
    }

    /// 32 kHz (DAB/broadcast) → 48 kHz.
    pub fn broadcast_to_dvd() -> Self {
        SrcConfig::new(32_000, 48_000)
    }

    /// Total prototype filter length.
    pub const fn prototype_len() -> usize {
        Self::TAPS * Self::PHASES
    }

    /// Input sample period in picoseconds (rounded).
    pub fn in_period_ps(&self) -> u64 {
        1_000_000_000_000u64 / u64::from(self.in_rate)
    }

    /// Output sample period in picoseconds (rounded).
    pub fn out_period_ps(&self) -> u64 {
        1_000_000_000_000u64 / u64::from(self.out_rate)
    }

    /// Advances a phase accumulator by one output sample.
    ///
    /// Returns `(new_acc, inputs_to_consume, phase_index)`: consume the
    /// inputs *first*, then filter with the phase. This tiny function is
    /// the control specification every abstraction level implements.
    #[inline]
    pub fn advance(&self, acc: u32) -> (u32, u32, u32) {
        let wide = u64::from(acc) + u64::from(self.step);
        let consume = (wide >> Self::PHASE_FRAC_BITS) as u32;
        let new_acc = (wide & ((1u64 << Self::PHASE_FRAC_BITS) - 1)) as u32;
        let phase = new_acc >> (Self::PHASE_FRAC_BITS - Self::PHASE_BITS);
        (new_acc, consume, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_values() {
        let up = SrcConfig::cd_to_dvd();
        // 44100/48000 * 2^24 = 15414067.2
        assert_eq!(up.step, 15_414_067);
        let down = SrcConfig::dvd_to_cd();
        // 48000/44100 * 2^24 = 18260915.0
        assert_eq!(down.step, 18_260_915);
    }

    #[test]
    fn upsampling_consumes_at_most_one() {
        let cfg = SrcConfig::cd_to_dvd();
        let mut acc = 0u32;
        let mut consumed = 0u64;
        for _ in 0..48_000 {
            let (a, c, p) = cfg.advance(acc);
            assert!(c <= 1);
            assert!(p < 32);
            consumed += u64::from(c);
            acc = a;
        }
        // one second of output consumes ~44100 inputs
        assert!((consumed as i64 - 44_100).abs() <= 1, "consumed {consumed}");
    }

    #[test]
    fn downsampling_consumes_one_or_two() {
        let cfg = SrcConfig::dvd_to_cd();
        let mut acc = 0u32;
        let mut consumed = 0u64;
        let mut twos = 0u64;
        for _ in 0..44_100 {
            let (a, c, _) = cfg.advance(acc);
            assert!(c == 1 || c == 2, "got {c}");
            twos += u64::from(c == 2);
            consumed += u64::from(c);
            acc = a;
        }
        assert!((consumed as i64 - 48_000).abs() <= 2, "consumed {consumed}");
        assert!(twos > 0, "the 2-consume corner case must occur");
    }

    #[test]
    fn phase_distribution_covers_range() {
        let cfg = SrcConfig::cd_to_dvd();
        let mut acc = 0u32;
        let mut seen = [false; 32];
        for _ in 0..10_000 {
            let (a, _, p) = cfg.advance(acc);
            seen[p as usize] = true;
            acc = a;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 30);
    }

    #[test]
    #[should_panic]
    fn extreme_downsampling_rejected() {
        let _ = SrcConfig::new(96_000, 44_100);
    }

    #[test]
    fn periods() {
        let cfg = SrcConfig::cd_to_dvd();
        assert_eq!(cfg.in_period_ps(), 22_675_736);
        assert_eq!(cfg.out_period_ps(), 20_833_333);
    }
}
