//! The flow driver: refine → validate → synthesise → report.
//!
//! [`run_area_flow`] regenerates the paper's Figure 10 table (gate-level
//! area of every design variant relative to the VHDL reference, split
//! combinational/sequential, memories excluded, scan included);
//! [`validate_all_levels`] re-runs the bit-accuracy check of every
//! refinement step, which is the discipline the whole approach rests on.
//!
//! RTL validation runs on a selectable engine ([`SimEngine`]): the
//! tree-walking interpreter, the compiled levelized engine, or the
//! 64-lane bit-parallel executor (lane 0). All three are bit-identical,
//! so the choice only affects wall-clock time; the `SCFLOW_SIM_ENGINE`
//! environment variable picks the default. Snapshot-capable engines can
//! additionally amortise a shared warmup across many scenarios with
//! [`run_forked_scenarios`] (warm up once, snapshot, restore per
//! scenario).

use crate::config::SrcConfig;
use crate::models::beh::{synthesize_beh_src, BehVariant};
use crate::models::harness::{run_fixed, run_handshake};
use crate::models::rtl::{build_rtl_src, RtlVariant};
use crate::models::vhdl_ref::build_vhdl_ref;
use crate::verify::{compare_bit_accurate, GoldenVectors};
use scflow_gate::{
    fault, sim_threads, CellLibrary, FastGateSim, GateNetlist, GateProgram, GateSim, ParGateSim,
};
use scflow_obs::{MetricsRegistry, Profiler};
use scflow_hwtypes::PassConfig;
use scflow_rtl::{CompiledProgram, Module, RtlSim};
use scflow_synth::rtl::{synthesize, SynthOptions, SynthResult};
use std::fmt;

pub use crate::error::ScflowError;

/// Former name of [`ScflowError`], kept as an alias for existing callers.
#[deprecated(since = "0.1.0", note = "renamed to `ScflowError`")]
pub type FlowError = ScflowError;

/// Which RTL simulation engine the flow drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SimEngine {
    /// The per-cycle tree-walking interpreter ([`RtlSim`]) — the
    /// paper's "interpreted" data point and the reference semantics.
    #[default]
    Interpreted,
    /// The compiled levelized engine
    /// ([`CompiledSim`](scflow_rtl::CompiledSim)) — one-time compilation
    /// to flat bytecode, then activity-gated re-evaluation.
    Compiled,
    /// The 64-lane bit-parallel executor over the same compiled bytecode
    /// ([`BitRtlSim`](scflow_rtl::BitRtlSim)). In the flow's
    /// single-stimulus harnesses it behaves as a lane-0 simulator
    /// (pokes broadcast, peeks read lane 0), byte-identical to the
    /// compiled engine; its 64 lanes pay off in scenario sweeps
    /// ([`run_forked_scenarios`]).
    BitParallel,
}

impl SimEngine {
    /// Reads the engine choice from the `SCFLOW_SIM_ENGINE` environment
    /// variable (`interpreted`, `compiled` or `rtl_bitpar`,
    /// case-insensitive). Unset or unrecognised values fall back to the
    /// default ([`SimEngine::Interpreted`]).
    pub fn from_env() -> Self {
        match std::env::var("SCFLOW_SIM_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("compiled") => SimEngine::Compiled,
            Ok(v) if v.eq_ignore_ascii_case("rtl_bitpar") => SimEngine::BitParallel,
            _ => SimEngine::Interpreted,
        }
    }
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimEngine::Interpreted => "interpreted",
            SimEngine::Compiled => "compiled",
            SimEngine::BitParallel => "rtl_bitpar",
        })
    }
}

/// Which gate-level simulation engine the flow drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GateEngine {
    /// The event-driven four-valued simulator with transport delays
    /// ([`GateSim`]) — the reference semantics and the paper's slowest
    /// Figure 9 bars.
    #[default]
    EventDriven,
    /// The zero-delay levelized fast mode with activity gating
    /// ([`FastGateSim`]).
    Fast,
    /// The compiled bit-parallel engine in single-pattern mode
    /// ([`BitGateSim`](scflow_gate::BitGateSim)).
    BitParallel,
    /// The partitioned multi-threaded engine
    /// ([`ParGateSim`](scflow_gate::ParGateSim)) on
    /// [`sim_threads`](scflow_gate::sim_threads) workers
    /// (`SCFLOW_SIM_THREADS`), byte-identical to the bit-parallel engine
    /// at any thread count.
    Partitioned,
}

impl GateEngine {
    /// Reads the engine choice from the `SCFLOW_GATE_ENGINE` environment
    /// variable (`event`, `fast`, `bitpar` or `partitioned`,
    /// case-insensitive). Unset or unrecognised values fall back to the
    /// default ([`GateEngine::EventDriven`]).
    pub fn from_env() -> Self {
        match std::env::var("SCFLOW_GATE_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("fast") => GateEngine::Fast,
            Ok(v) if v.eq_ignore_ascii_case("bitpar") => GateEngine::BitParallel,
            Ok(v) if v.eq_ignore_ascii_case("partitioned") => GateEngine::Partitioned,
            _ => GateEngine::EventDriven,
        }
    }
}

impl fmt::Display for GateEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GateEngine::EventDriven => "event",
            GateEngine::Fast => "fast",
            GateEngine::BitParallel => "bitpar",
            GateEngine::Partitioned => "partitioned",
        })
    }
}

/// Configuration of the `scflow-serve` simulation service, following
/// the same knob convention as the engine selectors above: every field
/// has an `SCFLOW_*` environment variable and a safe default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// TCP listen address (`SCFLOW_SERVE_ADDR`, e.g. `127.0.0.1:7450`).
    /// `None` — the default — serves the JSON-lines protocol over
    /// stdin/stdout instead of a socket.
    pub addr: Option<String>,
    /// Maximum concurrent sessions, each on its own worker thread
    /// (`SCFLOW_SERVE_THREADS`, default 4, clamped to 1..=64). Opening
    /// a session beyond the cap is refused with a `server_busy` error
    /// rather than queued, so a stuck client cannot wedge the pool.
    pub threads: usize,
    /// Compiled-design cache capacity in programs (`SCFLOW_CACHE_CAP`,
    /// default 8, minimum 1). Beyond it the least-recently-used entry
    /// not pinned by a live session is evicted.
    pub cache_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: None,
            threads: 4,
            cache_cap: 8,
        }
    }
}

impl ServeOptions {
    /// Reads the service configuration from `SCFLOW_SERVE_ADDR`,
    /// `SCFLOW_SERVE_THREADS` and `SCFLOW_CACHE_CAP`. Unset, empty or
    /// unparsable values fall back to the defaults; out-of-range counts
    /// are clamped rather than rejected.
    pub fn from_env() -> Self {
        let d = ServeOptions::default();
        let addr = match std::env::var("SCFLOW_SERVE_ADDR") {
            Ok(v) if !v.trim().is_empty() => Some(v.trim().to_owned()),
            _ => None,
        };
        let threads = std::env::var("SCFLOW_SERVE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(d.threads, |n| n.clamp(1, 64));
        let cache_cap = std::env::var("SCFLOW_CACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(d.cache_cap, |n| n.max(1));
        ServeOptions {
            addr,
            threads,
            cache_cap,
        }
    }
}

/// One row of the Figure 10 table.
#[derive(Clone, Debug)]
pub struct AreaRow {
    /// Design name (paper's x-axis label).
    pub design: String,
    /// Combinational cell area, µm².
    pub combinational_um2: f64,
    /// Sequential (flip-flop) cell area, µm².
    pub sequential_um2: f64,
    /// Total relative to the VHDL reference, percent.
    pub relative_pct: f64,
    /// Flip-flop count.
    pub flops: usize,
    /// Total cell count.
    pub cells: usize,
    /// Critical path, ps.
    pub critical_path_ps: u64,
}

impl AreaRow {
    /// Total cell area, µm².
    pub fn total_um2(&self) -> f64 {
        self.combinational_um2 + self.sequential_um2
    }
}

/// The Figure 10 dataset.
#[derive(Clone, Debug)]
pub struct AreaFigure {
    /// Rows in the paper's order: VHDL-Ref, BEH unopt, BEH opt, RTL
    /// unopt, RTL opt.
    pub rows: Vec<AreaRow>,
}

impl fmt::Display for AreaFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>10} {:>7} {:>7} {:>10}",
            "design", "comb um^2", "seq um^2", "rel %", "flops", "cells", "path ps"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>12.1} {:>12.1} {:>10.1} {:>7} {:>7} {:>10}",
                r.design,
                r.combinational_um2,
                r.sequential_um2,
                r.relative_pct,
                r.flops,
                r.cells,
                r.critical_path_ps
            )?;
        }
        Ok(())
    }
}

fn synth_row(
    design: &str,
    module: &Module,
    lib: &CellLibrary,
) -> Result<(AreaRow, SynthResult), ScflowError> {
    let result = synthesize(module, lib, &SynthOptions::default())?;
    let row = AreaRow {
        design: design.to_owned(),
        combinational_um2: result.area.combinational_um2,
        sequential_um2: result.area.sequential_um2,
        relative_pct: 0.0, // filled once the reference is known
        flops: result.netlist.flop_count(),
        cells: result.area.cell_count(),
        critical_path_ps: result.timing.critical_path_ps,
    };
    Ok((row, result))
}

/// Synthesises all five Figure 10 designs and reports their areas
/// relative to the VHDL reference.
///
/// # Errors
///
/// Propagates construction and synthesis errors.
pub fn run_area_flow(cfg: &SrcConfig, lib: &CellLibrary) -> Result<AreaFigure, ScflowError> {
    let vhdl = build_vhdl_ref(cfg)?;
    let beh_unopt = synthesize_beh_src(cfg, BehVariant::Unoptimised)?.module;
    let beh_opt = synthesize_beh_src(cfg, BehVariant::Optimised)?.module;
    let rtl_unopt = build_rtl_src(cfg, RtlVariant::Unoptimised)?;
    let rtl_opt = build_rtl_src(cfg, RtlVariant::Optimised)?;

    let mut rows = Vec::new();
    let (ref_row, _) = synth_row("VHDL-Ref", &vhdl, lib)?;
    let ref_total = ref_row.total_um2();
    rows.push(ref_row);
    for (name, module) in [
        ("BEH unopt", &beh_unopt),
        ("BEH opt", &beh_opt),
        ("RTL unopt", &rtl_unopt),
        ("RTL opt", &rtl_opt),
    ] {
        let (row, _) = synth_row(name, module, lib)?;
        rows.push(row);
    }
    for r in &mut rows {
        r.relative_pct = 100.0 * r.total_um2() / ref_total;
    }
    Ok(AreaFigure { rows })
}

/// Upper bound on testbench cycles for a handshaked SRC module run.
pub fn cycle_budget(expected_outputs: usize) -> u64 {
    // Worst case per output: consume (2 beats with capture/store), the
    // MAC pipeline (up to 3 cycles per tap in the reference), output
    // handshake, plus generous FSM overhead for the behavioural schedules.
    (expected_outputs as u64 + 4) * 400
}

fn run_and_compare(
    sim: &mut (impl scflow_sim_api::Simulation + ?Sized),
    design: &str,
    golden: &GoldenVectors,
    fixed_mode: bool,
) -> Result<(), ScflowError> {
    let budget = cycle_budget(golden.len());
    let (outputs, _) = if fixed_mode {
        run_fixed(sim, &golden.input, golden.len(), budget)
    } else {
        run_handshake(sim, &golden.input, golden.len(), budget)
    };
    compare_bit_accurate(&golden.output, &outputs).map_err(|mismatch| ScflowError::Accuracy {
        design: design.to_owned(),
        mismatch,
    })
}

/// Validates one synthesisable module against the golden vectors on the
/// chosen RTL engine.
///
/// # Errors
///
/// Returns [`ScflowError::Accuracy`] on the first output mismatch, and
/// propagates compilation errors from the compiled engine.
pub fn validate_module_with(
    engine: SimEngine,
    design: &str,
    module: &Module,
    golden: &GoldenVectors,
    fixed_mode: bool,
) -> Result<(), ScflowError> {
    // The compile-pass pipeline is a flow-level knob (`SCFLOW_OPT`):
    // passes are semantics-preserving, so the level only affects
    // throughput, never the validation verdict. The interpreter has no
    // compile step and therefore no passes.
    let passes = PassConfig::from_env();
    match engine {
        SimEngine::Interpreted => {
            let mut sim = RtlSim::new(module);
            run_and_compare(&mut sim, design, golden, fixed_mode)
        }
        SimEngine::Compiled => {
            let program = CompiledProgram::compile_with(module, &passes)?;
            let mut sim = program.simulator();
            run_and_compare(&mut sim, design, golden, fixed_mode)
        }
        SimEngine::BitParallel => {
            let program = CompiledProgram::compile_with(module, &passes)?;
            let mut sim = program.bit_simulator();
            run_and_compare(&mut sim, design, golden, fixed_mode)
        }
    }
}

/// Validates one synthesisable module against the golden vectors on the
/// engine named by `SCFLOW_SIM_ENGINE` (interpreted by default).
///
/// # Errors
///
/// Returns [`ScflowError::Accuracy`] on the first output mismatch.
pub fn validate_module(
    design: &str,
    module: &Module,
    golden: &GoldenVectors,
    fixed_mode: bool,
) -> Result<(), ScflowError> {
    validate_module_with(SimEngine::from_env(), design, module, golden, fixed_mode)
}

/// Re-validates every synthesisable design of the flow against the golden
/// vectors (the paper's per-step bit-accuracy discipline, in one call),
/// on the chosen RTL engine.
///
/// # Errors
///
/// Returns the first failing design.
pub fn validate_all_levels_with(
    engine: SimEngine,
    cfg: &SrcConfig,
    input: &[i16],
) -> Result<(), ScflowError> {
    validate_all_levels_profiled(engine, cfg, input, &mut Profiler::new())
}

/// [`validate_all_levels_with`], with each design validation recorded as
/// a child span of the caller's currently open span.
fn validate_all_levels_profiled(
    engine: SimEngine,
    cfg: &SrcConfig,
    input: &[i16],
    prof: &mut Profiler,
) -> Result<(), ScflowError> {
    let golden =
        prof.scope("golden_vectors", |_| GoldenVectors::generate(cfg, input.to_vec()));

    prof.scope("BEH unopt", |_| {
        let m = synthesize_beh_src(cfg, BehVariant::Unoptimised)?.module;
        validate_module_with(engine, "BEH unopt", &m, &golden, false)
    })?;
    prof.scope("BEH opt", |_| {
        let m = synthesize_beh_src(cfg, BehVariant::Optimised)?.module;
        validate_module_with(engine, "BEH opt", &m, &golden, true)
    })?;
    prof.scope("RTL unopt", |_| {
        let m = build_rtl_src(cfg, RtlVariant::Unoptimised)?;
        validate_module_with(engine, "RTL unopt", &m, &golden, false)
    })?;
    prof.scope("RTL opt", |_| {
        let m = build_rtl_src(cfg, RtlVariant::Optimised)?;
        validate_module_with(engine, "RTL opt", &m, &golden, false)
    })?;
    prof.scope("RTL buggy", |_| {
        let m = build_rtl_src(cfg, RtlVariant::OptimisedBuggy)?;
        validate_module_with(engine, "RTL buggy", &m, &golden, false)
    })?;
    prof.scope("VHDL-Ref", |_| {
        let m = build_vhdl_ref(cfg)?;
        validate_module_with(engine, "VHDL-Ref", &m, &golden, false)
    })?;
    Ok(())
}

/// Re-validates every synthesisable design on the engine named by
/// `SCFLOW_SIM_ENGINE` (interpreted by default).
///
/// # Errors
///
/// Returns the first failing design.
pub fn validate_all_levels(cfg: &SrcConfig, input: &[i16]) -> Result<(), ScflowError> {
    validate_all_levels_with(SimEngine::from_env(), cfg, input)
}

/// Why a fork-style scenario sweep stopped (see
/// [`run_forked_scenarios`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// The engine returned `None` from [`Simulation::snapshot`] — only
    /// snapshot-capable engines (the compiled RTL engines, the
    /// bit-parallel gate engine) can run forked sweeps.
    SnapshotUnsupported,
    /// [`Simulation::restore`] refused the warmup snapshot before this
    /// scenario index — should not happen for a blob the same engine
    /// just produced, so it indicates the engine was swapped or the
    /// blob was corrupted in between.
    RestoreFailed {
        /// Index into the scenario slice.
        scenario: usize,
    },
    /// A scenario's batch was rejected.
    Batch {
        /// Index into the scenario slice.
        scenario: usize,
        /// The engine's refusal.
        error: scflow_sim_api::BatchError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::SnapshotUnsupported => {
                f.write_str("engine does not support snapshots")
            }
            SweepError::RestoreFailed { scenario } => {
                write!(f, "warmup snapshot refused before scenario {scenario}")
            }
            SweepError::Batch { scenario, error } => {
                write!(f, "scenario {scenario} rejected: {error}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Runs a scenario sweep fork-style: `warmup` drives the engine to the
/// state every scenario shares (reset sequence, configuration, cache
/// fill — whatever is common), the helper snapshots that state once,
/// and each scenario then starts from a [`Simulation::restore`] of the
/// snapshot instead of paying the warmup again.
///
/// With `lanes` set, each scenario batch runs through
/// [`Simulation::step_batch_lanes`] — up to 64 independent stimulus
/// items in one engine pass on the lane-parallel engines. Without it,
/// scenarios run through the portable sequential
/// [`Simulation::step_batch`], where a batch's items thread state from
/// one to the next.
///
/// Returns one [`BatchReply`] per scenario; the engine is left in the
/// final state of the *last* scenario (no trailing restore).
///
/// # Errors
///
/// [`SweepError::SnapshotUnsupported`] if the engine cannot snapshot,
/// [`SweepError::RestoreFailed`] / [`SweepError::Batch`] on the first
/// scenario that fails (earlier replies are discarded).
pub fn run_forked_scenarios<S: scflow_sim_api::Simulation + ?Sized>(
    sim: &mut S,
    warmup: impl FnOnce(&mut S),
    scenarios: &[scflow_sim_api::StimulusBatch],
    lanes: bool,
) -> Result<Vec<scflow_sim_api::BatchReply>, SweepError> {
    warmup(sim);
    let snap = sim.snapshot().ok_or(SweepError::SnapshotUnsupported)?;
    let mut replies = Vec::with_capacity(scenarios.len());
    for (scenario, batch) in scenarios.iter().enumerate() {
        if !sim.restore(&snap) {
            return Err(SweepError::RestoreFailed { scenario });
        }
        let reply = if lanes {
            sim.step_batch_lanes(batch)
        } else {
            sim.step_batch(batch)
        };
        replies.push(reply.map_err(|error| SweepError::Batch { scenario, error })?);
    }
    Ok(replies)
}

/// Holds the scan interface inactive so a scan-stitched netlist behaves
/// functionally under the plain handshake testbench.
fn tie_off_scan(sim: &mut (impl scflow_sim_api::Simulation + ?Sized)) {
    use scflow_hwtypes::Bv;
    for port in ["scan_en", "scan_in", "test_mode"] {
        if sim.has_input(port) {
            sim.poke(port, Bv::zero(1));
        }
    }
}

/// Validates a synthesized gate netlist against the golden vectors on the
/// chosen gate-level engine (scan held inactive).
///
/// # Errors
///
/// Returns [`ScflowError::Accuracy`] on the first output mismatch, and
/// propagates [`GateError::CombLoop`](scflow_gate::GateError) from the
/// levelized engines.
pub fn validate_gate_level_with(
    engine: GateEngine,
    design: &str,
    netlist: &GateNetlist,
    lib: &CellLibrary,
    golden: &GoldenVectors,
) -> Result<(), ScflowError> {
    // Same `SCFLOW_OPT` knob as the RTL path: optimize the netlist
    // before handing it to any engine. The passes keep every observed
    // output and the scan chain, so the verdict cannot change. (The
    // fault flow never optimizes — collapsed cells would hide fault
    // sites.)
    let passes = PassConfig::from_env();
    let optimized;
    let netlist = if passes.any() {
        optimized = scflow_gate::optimize(netlist, &passes)?.netlist;
        &optimized
    } else {
        netlist
    };
    match engine {
        GateEngine::EventDriven => {
            let mut sim = GateSim::new(netlist, lib);
            tie_off_scan(&mut sim);
            run_and_compare(&mut sim, design, golden, false)
        }
        GateEngine::Fast => {
            let mut sim = FastGateSim::new(netlist)?;
            tie_off_scan(&mut sim);
            run_and_compare(&mut sim, design, golden, false)
        }
        GateEngine::BitParallel => {
            let program = GateProgram::compile(netlist)?;
            let mut sim = program.simulator();
            tie_off_scan(&mut sim);
            run_and_compare(&mut sim, design, golden, false)
        }
        GateEngine::Partitioned => {
            let program = GateProgram::compile(netlist)?;
            ParGateSim::with(&program, sim_threads(), 1, |sim| {
                tie_off_scan(sim);
                run_and_compare(sim, design, golden, false)
            })
        }
    }
}

/// The result of the scan-test fault-coverage flow.
///
/// Coverage is reported over *collapsed* fault classes
/// ([`fault::collapse_faults`]): structurally equivalent faults share
/// every detecting pattern, so counting each class once is both cheaper
/// to simulate and the honest denominator. `uncollapsed` records the raw
/// two-per-cell-output list size for comparison with the paper's counts.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Design name.
    pub design: String,
    /// Collapsed fault classes simulated.
    pub faults: usize,
    /// Raw fault-site count before collapsing (two per cell output).
    pub uncollapsed: usize,
    /// Fault classes detected by the pattern set.
    pub detected: usize,
    /// Detected / total, percent.
    pub coverage_pct: f64,
    /// PPSFP worker threads used.
    pub threads: usize,
    /// Scan patterns applied.
    pub patterns: usize,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>8} {:>6} {:>9} {:>10} {:>9} {:>8}",
            "design", "faults", "(raw)", "detected", "coverage", "patterns", "threads"
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>6} {:>9} {:>9.1}% {:>9} {:>8}",
            self.design,
            self.faults,
            self.uncollapsed,
            self.detected,
            self.coverage_pct,
            self.patterns,
            self.threads
        )
    }
}

/// Runs the scan-test fault-coverage flow on the optimised RTL SRC:
/// synthesise (scan stitched in by default), enumerate the single-stuck-at
/// fault list, generate `n_patterns` pseudo-random scan patterns, and
/// measure coverage with PPSFP on [`fault::fault_threads`] workers
/// (`SCFLOW_FAULT_THREADS`).
///
/// # Errors
///
/// Propagates construction and synthesis errors.
pub fn run_fault_flow(
    cfg: &SrcConfig,
    lib: &CellLibrary,
    n_patterns: usize,
    seed: u64,
) -> Result<FaultReport, ScflowError> {
    run_fault_flow_instrumented(cfg, lib, n_patterns, seed).map(|(report, _)| report)
}

/// [`run_fault_flow`] plus the fault simulator's run instrumentation
/// (per-shard timing and the fault-drop-rate curve).
///
/// # Errors
///
/// Propagates construction and synthesis errors.
pub fn run_fault_flow_instrumented(
    cfg: &SrcConfig,
    lib: &CellLibrary,
    n_patterns: usize,
    seed: u64,
) -> Result<(FaultReport, fault::FaultSimStats), ScflowError> {
    let module = build_rtl_src(cfg, RtlVariant::Optimised)?;
    let netlist = synthesize(&module, lib, &SynthOptions::default())?.netlist;
    let all = fault::all_fault_sites(&netlist);
    let collapsed = fault::collapse_faults(&netlist, &all);
    let patterns = fault::random_patterns(&netlist, n_patterns, seed);
    let threads = fault::fault_threads();
    let (result, stats) = fault::fault_coverage_instrumented_with_threads(
        &netlist,
        lib,
        &collapsed.faults,
        &patterns,
        threads,
    );
    let report = FaultReport {
        design: "RTL opt".to_owned(),
        faults: result.total,
        uncollapsed: all.len(),
        detected: result.detected,
        coverage_pct: result.coverage_pct(),
        threads,
        patterns: patterns.len(),
    };
    Ok((report, stats))
}

/// The result of the ATPG flow: staged pattern generation
/// ([`scflow_gate::generate_tests`]) against the collapsed stuck-at
/// fault list of the synthesized optimised RTL SRC.
#[derive(Clone, Debug)]
pub struct AtpgReport {
    /// Design name.
    pub design: String,
    /// Collapsed fault classes targeted.
    pub faults: usize,
    /// Raw fault-site count before collapsing.
    pub uncollapsed: usize,
    /// Classes with a simulation-verified detecting pattern.
    pub detected: usize,
    /// Classes proven untestable by exhausted PODEM search.
    pub untestable: usize,
    /// Classes given up (budget, or unsound-to-prove).
    pub aborted: usize,
    /// Detected / total, percent (stuck-at fault coverage).
    pub coverage_pct: f64,
    /// Detected / (total − untestable), percent.
    pub test_coverage_pct: f64,
    /// Patterns in the final (compacted) test set.
    pub patterns: usize,
    /// PPSFP worker threads used for simulation stages.
    pub threads: usize,
    /// Coverage-vs-pattern-count checkpoints per stage.
    pub curve: Vec<scflow_gate::CurvePoint>,
}

impl fmt::Display for AtpgReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>7} {:>6} {:>9} {:>11} {:>8} {:>9} {:>9} {:>8}",
            "design", "faults", "(raw)", "detected", "untestable", "aborted", "coverage",
            "patterns", "threads"
        )?;
        writeln!(
            f,
            "{:<12} {:>7} {:>6} {:>9} {:>11} {:>8} {:>8.1}% {:>9} {:>8}",
            self.design,
            self.faults,
            self.uncollapsed,
            self.detected,
            self.untestable,
            self.aborted,
            self.coverage_pct,
            self.patterns,
            self.threads
        )?;
        writeln!(f, "\ncoverage curve (stage, patterns, detected):")?;
        for p in &self.curve {
            writeln!(f, "  {:<9} {:>6} {:>7}", p.stage, p.patterns, p.detected)?;
        }
        Ok(())
    }
}

/// Runs the ATPG flow on the optimised RTL SRC: synthesise (scan
/// stitched in by default), collapse the stuck-at fault list, and run
/// the staged generator (random rounds with fault dropping, directed
/// PODEM for the remainder, reverse-order compaction). Returns the
/// summary report plus the full [`scflow_gate::AtpgResult`] (patterns,
/// per-fault classes, deterministic stats).
///
/// # Errors
///
/// Propagates construction and synthesis errors.
pub fn run_atpg_flow(
    cfg: &SrcConfig,
    lib: &CellLibrary,
    opts: &scflow_gate::AtpgOptions,
) -> Result<(AtpgReport, scflow_gate::AtpgResult), ScflowError> {
    let module = build_rtl_src(cfg, RtlVariant::Optimised)?;
    let netlist = synthesize(&module, lib, &SynthOptions::default())?.netlist;
    let all = fault::all_fault_sites(&netlist);
    let collapsed = fault::collapse_faults(&netlist, &all);
    let result = scflow_gate::generate_tests(&netlist, lib, &collapsed.faults, opts);
    let report = AtpgReport {
        design: "RTL opt".to_owned(),
        faults: collapsed.faults.len(),
        uncollapsed: all.len(),
        detected: result.detected(),
        untestable: result.untestable(),
        aborted: result.aborted(),
        coverage_pct: result.coverage_pct(),
        test_coverage_pct: result.test_coverage_pct(),
        patterns: result.patterns.len(),
        threads: fault::fault_threads(),
        curve: result.stats.curve.clone(),
    };
    Ok((report, result))
}

/// A profiled end-to-end flow run: wall-clock phase spans plus the
/// deterministic metrics the phases produced.
///
/// The three flow phases are root spans of `profiler`, so
/// [`Profiler::total_ns`] equals their sum by construction; each design
/// validated by the first phase appears as a child span.
#[derive(Clone, Debug)]
pub struct FlowProfile {
    /// The Figure 10 area table from the `run_area_flow` phase.
    pub area: AreaFigure,
    /// The fault-coverage report from the `run_fault_flow` phase.
    pub fault: FaultReport,
    /// Fault-simulator instrumentation (shard timing, drop curve).
    pub fault_stats: fault::FaultSimStats,
    /// Phase spans: `validate_all_levels`, `run_area_flow`,
    /// `run_fault_flow`, with per-design children under the first.
    pub profiler: Profiler,
    /// Deterministic quantities gathered along the way (fault drop
    /// curve, pattern/design counts) — wall times stay in `profiler`.
    pub metrics: MetricsRegistry,
}

impl FlowProfile {
    /// Total profiled wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.profiler.total_ns()
    }

    /// Human-readable span tree.
    pub fn report(&self) -> String {
        self.profiler.report()
    }
}

/// Runs the complete flow — refinement validation on the engine named by
/// `SCFLOW_SIM_ENGINE`, the Figure 10 area table, and the scan-test
/// fault-coverage flow — with every phase profiled.
///
/// # Errors
///
/// Returns the first failing phase's error.
pub fn profile_flow(
    cfg: &SrcConfig,
    lib: &CellLibrary,
    input: &[i16],
    n_patterns: usize,
    seed: u64,
) -> Result<FlowProfile, ScflowError> {
    let engine = SimEngine::from_env();
    let mut prof = Profiler::new();
    prof.scope("validate_all_levels", |p| {
        validate_all_levels_profiled(engine, cfg, input, p)
    })?;
    let area = prof.scope("run_area_flow", |_| run_area_flow(cfg, lib))?;
    let (fault, fault_stats) = prof.scope("run_fault_flow", |p| {
        let r = run_fault_flow_instrumented(cfg, lib, n_patterns, seed);
        if let Ok((_, stats)) = &r {
            // Shards run concurrently, so these child spans may sum to
            // more than the phase span; they are wall-clock, like all
            // profiler spans, and stay out of the metrics registry.
            for (i, &ns) in stats.shard_wall_ns.iter().enumerate() {
                p.record(&format!("fault_shard_{i}"), ns);
            }
        }
        r
    })?;

    let mut metrics = MetricsRegistry::new();
    fault_stats.register_into(&mut metrics, &format!("fault.{}", fault_stats.engine));
    metrics.set_counter("flow.designs_validated", 6);
    metrics.set_counter("flow.input_samples", input.len() as u64);
    metrics.set_counter("flow.scan_patterns", fault.patterns as u64);
    metrics.set_counter("flow.fault_sites", fault.faults as u64);
    metrics.set_counter("flow.faults_detected", fault.detected as u64);
    Ok(FlowProfile {
        area,
        fault,
        fault_stats,
        profiler: prof,
        metrics,
    })
}
