//! The flow-wide error type.
//!
//! Every fallible stage of the flow — RTL construction, compilation to
//! the levelized engine, synthesis, testbench port access, gate-level
//! levelization, and the bit-accuracy discipline itself — funnels into
//! [`ScflowError`], so drivers can use `?` across stage boundaries and
//! report a single error chain to the user.

use crate::verify::Mismatch;
use scflow_gate::GateError;
use scflow_rtl::RtlError;
use scflow_sim_api::SimError;
use scflow_synth::SynthError;
use std::error::Error;
use std::fmt;

/// Unified error for the whole design flow.
#[derive(Debug)]
pub enum ScflowError {
    /// RTL construction or compilation failed.
    Rtl(RtlError),
    /// Synthesis failed.
    Synth(SynthError),
    /// A simulation engine rejected a port access.
    Sim(SimError),
    /// Gate-level construction or levelization failed.
    Gate(GateError),
    /// A model diverged from the golden vectors.
    Accuracy {
        /// The failing design.
        design: String,
        /// The first mismatch.
        mismatch: Mismatch,
    },
}

impl fmt::Display for ScflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScflowError::Rtl(e) => write!(f, "rtl error: {e}"),
            ScflowError::Synth(e) => write!(f, "synthesis error: {e}"),
            ScflowError::Sim(e) => write!(f, "simulation error: {e}"),
            ScflowError::Gate(e) => write!(f, "gate-level error: {e}"),
            ScflowError::Accuracy { design, mismatch } => {
                write!(f, "bit-accuracy failure in {design}: {mismatch}")
            }
        }
    }
}

impl Error for ScflowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScflowError::Rtl(e) => Some(e),
            ScflowError::Synth(e) => Some(e),
            ScflowError::Sim(e) => Some(e),
            ScflowError::Gate(e) => Some(e),
            ScflowError::Accuracy { .. } => None,
        }
    }
}

impl From<RtlError> for ScflowError {
    fn from(e: RtlError) -> Self {
        ScflowError::Rtl(e)
    }
}

impl From<SynthError> for ScflowError {
    fn from(e: SynthError) -> Self {
        ScflowError::Synth(e)
    }
}

impl From<SimError> for ScflowError {
    fn from(e: SimError) -> Self {
        ScflowError::Sim(e)
    }
}

impl From<GateError> for ScflowError {
    fn from(e: GateError) -> Self {
        ScflowError::Gate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_stage_prefixes() {
        let e = ScflowError::Sim(SimError::UnknownPort("clk_en".into()));
        assert_eq!(e.to_string(), "simulation error: no port named `clk_en`");
        let e = ScflowError::Gate(GateError::CombLoop {
            netlist: "ring".into(),
        });
        assert_eq!(
            e.to_string(),
            "gate-level error: combinational loop in netlist `ring`"
        );
    }

    #[test]
    fn source_chains_to_the_stage_error() {
        let e = ScflowError::Sim(SimError::UnknownPort("x".into()));
        assert!(e.source().is_some());
    }
}
