//! `scflow` — a refinement-driven, SystemC-style design flow, reproduced
//! in Rust on the design the DATE 2004 paper evaluated: an automotive
//! audio **sample-rate converter** (SRC).
//!
//! The paper (*Evaluation of a Refinement-Driven SystemC-Based Design
//! Flow*, Schubert et al., DATE 2004) takes one design through a chain of
//! manual refinements inside a single language, re-validating bit accuracy
//! at every step, and compares simulation performance and synthesised area
//! against a conventional VHDL reference flow. This crate holds that whole
//! chain:
//!
//! | Level | Paper artefact | Here |
//! |---|---|---|
//! | L0 | C++ algorithmic model | [`algo::AlgoSrc`] (ring buffer + polyphase filter + `filter()`) |
//! | L1 | SystemC 2.0 hierarchical channel | [`models::channel`] |
//! | L1b | Refined channel (3 submodules, events, IMC) | [`models::refined`] |
//! | L2 | Synthesisable behavioural SystemC | [`models::beh`] (clocked kernel model + behavioural program) |
//! | L3 | Optimised behavioural | [`models::beh`] optimised variant |
//! | L4 | RTL SystemC | [`models::rtl`] unoptimised variant |
//! | L5 | Optimised RTL | [`models::rtl`] optimised variant |
//! | — | VHDL reference implementation | [`models::vhdl_ref`] |
//! | — | Gate level | via `scflow-synth` on any of the above |
//!
//! The cross-level verification harness lives in [`verify`]; the flow
//! driver that regenerates the paper's Figure 10 table lives in [`flow`].
//!
//! # Quickstart
//!
//! ```
//! use scflow::{SrcConfig, algo::AlgoSrc};
//!
//! // CD (44.1 kHz) to DVD (48 kHz).
//! let cfg = SrcConfig::cd_to_dvd();
//! let mut src = AlgoSrc::new(&cfg);
//! let input: Vec<i16> = (0..441).map(|n| {
//!     let t = n as f64 / 44100.0;
//!     (8000.0 * (2.0 * std::f64::consts::PI * 1000.0 * t).sin()) as i16
//! }).collect();
//! let output = src.process(&input);
//! // ~480 output samples for 441 input samples.
//! assert!((output.len() as i64 - 480).abs() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod coeffs;
mod config;
pub mod error;
pub mod flow;
pub mod models;
pub mod stimulus;
pub mod verify;

pub use coeffs::{design_prototype, CoefficientRom};
pub use config::SrcConfig;
pub use error::ScflowError;

/// One-stop imports for driving the flow.
///
/// Pulls in the configuration and driver entry points, the unified
/// [`Simulation`](scflow_sim_api::Simulation) trait with every engine
/// that implements it (interpreted RTL, compiled levelized RTL, event-
/// driven and levelized gate level), and the shared testbench helpers:
///
/// ```
/// use scflow::prelude::*;
///
/// let cfg = SrcConfig::cd_to_dvd();
/// let module = scflow::models::rtl::build_rtl_src(&cfg, scflow::models::rtl::RtlVariant::Optimised).unwrap();
/// let program = CompiledProgram::compile(&module).unwrap();
/// let mut sim = program.simulator();
/// sim.poke("out_sample_ready", Bv::bit(true));
/// sim.settle();
/// assert_eq!(sim.peek("out_sample_valid"), Bv::zero(1));
/// ```
pub mod prelude {
    pub use crate::algo::AlgoSrc;
    pub use crate::error::ScflowError;
    pub use crate::flow::{
        run_area_flow, run_forked_scenarios, validate_all_levels, validate_all_levels_with,
        validate_module, validate_module_with, AreaFigure, ServeOptions, SimEngine, SweepError,
    };
    pub use crate::models::harness::{run_fixed, run_handshake};
    pub use crate::verify::{compare_bit_accurate, GoldenVectors};
    pub use crate::{design_prototype, stimulus, CoefficientRom, SrcConfig};
    pub use scflow_gate::{CellLibrary, FastGateSim, GateError, GateSim};
    pub use scflow_hwtypes::Bv;
    pub use scflow_rtl::{CompiledProgram, CompiledSim, Module, RtlError, RtlSim};
    pub use scflow_sim_api::{EngineStats, SimError, Simulation};
}
