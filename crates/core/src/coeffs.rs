//! Polyphase filter design and the halved-symmetric coefficient ROM.

use crate::config::SrcConfig;

/// Designs the prototype lowpass as a Kaiser-windowed sinc, quantised to
/// Q1.14, with the global gain normalised so that the per-phase DC gain is
/// close to one and no phase overflows.
///
/// The prototype is symmetric (`h[i] == h[N-1-i]`), which is what lets the
/// hardware store only half of it — the paper: *"the iterator of the
/// polyphase filter hides the storage order of the coefficients and the
/// fact that only one half of the symmetrical impulse response is
/// stored"*.
pub fn design_prototype(cfg: &SrcConfig) -> Vec<i16> {
    let n = SrcConfig::prototype_len();
    let phases = SrcConfig::PHASES as f64;
    // Cutoff at the lower Nyquist frequency, normalised to the
    // phase-upsampled rate; a little margin for the transition band.
    let ratio = f64::from(cfg.in_rate.min(cfg.out_rate)) / f64::from(cfg.in_rate);
    let fc = 0.45 * ratio / phases;
    let beta = 8.0;

    let mid = (n as f64 - 1.0) / 2.0;
    let mut h: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 - mid;
            let sinc = if x.abs() < 1e-12 {
                1.0
            } else {
                (2.0 * std::f64::consts::PI * fc * x).sin() / (std::f64::consts::PI * x)
            };
            let w = kaiser(beta, x / (n as f64 / 2.0));
            sinc * w
        })
        .collect();

    // Normalise: the worst-case per-phase sum must fit Q1.14 and DC gain
    // per phase should be ~1.
    let mut max_phase_sum = 0.0f64;
    for p in 0..SrcConfig::PHASES {
        let s: f64 = (0..SrcConfig::TAPS).map(|k| h[k * SrcConfig::PHASES + p]).sum();
        max_phase_sum = max_phase_sum.max(s.abs());
    }
    let scale = 1.0 / max_phase_sum;
    for v in &mut h {
        *v *= scale;
    }

    let q = (1i64 << SrcConfig::COEF_FRAC_BITS) as f64;
    let max = i64::from(i16::MAX);
    let min = i64::from(i16::MIN);
    let quantised: Vec<i16> = h
        .iter()
        .map(|&v| ((v * q).round() as i64).clamp(min, max) as i16)
        .collect();

    // Force exact symmetry after quantisation (rounding can break ties).
    let mut out = quantised;
    for i in 0..n / 2 {
        out[n - 1 - i] = out[i];
    }
    out
}

fn kaiser(beta: f64, x: f64) -> f64 {
    if x.abs() > 1.0 {
        return 0.0;
    }
    bessel_i0(beta * (1.0 - x * x).sqrt()) / bessel_i0(beta)
}

/// Modified Bessel function of the first kind, order zero (power series).
fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half = x / 2.0;
    for k in 1..40 {
        term *= (half / k as f64) * (half / k as f64);
        sum += term;
        if term < 1e-18 * sum {
            break;
        }
    }
    sum
}

/// The halved coefficient ROM: phases `0..PHASES/2`, each with `TAPS`
/// coefficients; the upper phases are derived by symmetry at read time.
///
/// # Example
///
/// ```
/// use scflow::{CoefficientRom, SrcConfig};
///
/// let rom = CoefficientRom::design(&SrcConfig::cd_to_dvd());
/// assert_eq!(rom.words().len(), 256); // 16 phases x 16 taps stored
/// // Symmetry: phase p tap k == phase 31-p tap 15-k.
/// assert_eq!(rom.coefficient(3, 5), rom.coefficient(28, 10));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoefficientRom {
    words: Vec<i16>,
}

impl CoefficientRom {
    /// Designs the prototype and extracts the stored half.
    pub fn design(cfg: &SrcConfig) -> Self {
        let proto = design_prototype(cfg);
        CoefficientRom::from_prototype(&proto)
    }

    /// Builds the ROM from a symmetric prototype of
    /// [`SrcConfig::prototype_len`] coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the length is wrong or the prototype is not symmetric.
    pub fn from_prototype(proto: &[i16]) -> Self {
        let n = SrcConfig::prototype_len();
        assert_eq!(proto.len(), n, "prototype length");
        for i in 0..n / 2 {
            assert_eq!(proto[i], proto[n - 1 - i], "prototype must be symmetric");
        }
        let mut words = Vec::with_capacity(n / 2);
        for p in 0..SrcConfig::PHASES / 2 {
            for k in 0..SrcConfig::TAPS {
                words.push(proto[k * SrcConfig::PHASES + p]);
            }
        }
        CoefficientRom { words }
    }

    /// The stored half (`PHASES/2 * TAPS` words), phase-major.
    pub fn words(&self) -> &[i16] {
        &self.words
    }

    /// The ROM address holding `coefficient(phase, tap)` — the address
    /// arithmetic the hardware implements (symmetry folded in).
    ///
    /// # Panics
    ///
    /// Panics if `phase` or `tap` is out of range.
    pub fn address(phase: u32, tap: u32) -> u32 {
        assert!((phase as usize) < SrcConfig::PHASES);
        assert!((tap as usize) < SrcConfig::TAPS);
        let half = SrcConfig::PHASES as u32 / 2;
        let (p, k) = if phase < half {
            (phase, tap)
        } else {
            (
                SrcConfig::PHASES as u32 - 1 - phase,
                SrcConfig::TAPS as u32 - 1 - tap,
            )
        };
        p * SrcConfig::TAPS as u32 + k
    }

    /// Coefficient for `(phase, tap)`, resolving the halved storage.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn coefficient(&self, phase: u32, tap: u32) -> i16 {
        self.words[Self::address(phase, tap) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_is_symmetric_and_sized() {
        let proto = design_prototype(&SrcConfig::cd_to_dvd());
        assert_eq!(proto.len(), 512);
        for i in 0..256 {
            assert_eq!(proto[i], proto[511 - i]);
        }
    }

    #[test]
    fn per_phase_gain_close_to_unity() {
        let cfg = SrcConfig::cd_to_dvd();
        let proto = design_prototype(&cfg);
        let q = (1i64 << SrcConfig::COEF_FRAC_BITS) as f64;
        for p in 0..SrcConfig::PHASES {
            let s: i64 = (0..SrcConfig::TAPS)
                .map(|k| i64::from(proto[k * SrcConfig::PHASES + p]))
                .sum();
            let gain = s as f64 / q;
            assert!(
                (0.80..=1.001).contains(&gain),
                "phase {p} gain {gain}"
            );
        }
    }

    #[test]
    fn rom_matches_prototype_through_symmetry() {
        let cfg = SrcConfig::cd_to_dvd();
        let proto = design_prototype(&cfg);
        let rom = CoefficientRom::from_prototype(&proto);
        for p in 0..SrcConfig::PHASES as u32 {
            for k in 0..SrcConfig::TAPS as u32 {
                assert_eq!(
                    rom.coefficient(p, k),
                    proto[k as usize * SrcConfig::PHASES + p as usize],
                    "phase {p} tap {k}"
                );
            }
        }
    }

    #[test]
    fn rom_size_is_half() {
        let rom = CoefficientRom::design(&SrcConfig::cd_to_dvd());
        assert_eq!(rom.words().len(), SrcConfig::prototype_len() / 2);
    }

    #[test]
    fn no_coefficient_saturates() {
        let rom = CoefficientRom::design(&SrcConfig::dvd_to_cd());
        assert!(rom.words().iter().all(|&c| c > i16::MIN && c < i16::MAX));
    }

    #[test]
    fn bessel_sanity() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-12);
        // I0(1) = 1.2660658...
        assert!((bessel_i0(1.0) - 1.266_065_877_752_008).abs() < 1e-9);
    }
}
