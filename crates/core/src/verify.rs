//! Cross-level verification: golden vectors and bit-accurate comparison.
//!
//! The paper's refinement discipline — "each refinement step was verified
//! for bit accuracy by simulation" — is implemented here as a reusable
//! harness: the algorithmic model produces golden vectors, every other
//! level's testbench produces its own output stream, and
//! [`compare_bit_accurate`] reports the first mismatch with context.

use crate::algo::AlgoSrc;
use crate::config::SrcConfig;

/// A golden stimulus/response pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoldenVectors {
    /// The input samples.
    pub input: Vec<i16>,
    /// The expected output samples.
    pub output: Vec<i16>,
    /// Inputs consumed before each output (the accumulator schedule) —
    /// lets event-driven testbenches interleave I/O exactly like the
    /// golden model.
    pub consume_schedule: Vec<u32>,
}

impl GoldenVectors {
    /// Runs the golden (algorithmic) model over `input`.
    pub fn generate(cfg: &SrcConfig, input: Vec<i16>) -> Self {
        let mut src = AlgoSrc::new(cfg);
        let mut output = Vec::new();
        let mut consume_schedule = Vec::new();
        let mut pos = 0usize;
        loop {
            let need = src.inputs_needed();
            if pos + need as usize > input.len() {
                break;
            }
            for &s in &input[pos..pos + need as usize] {
                src.push_input(s);
            }
            pos += need as usize;
            consume_schedule.push(need);
            output.push(src.output_sample());
        }
        GoldenVectors {
            input,
            output,
            consume_schedule,
        }
    }

    /// Number of golden output samples.
    pub fn len(&self) -> usize {
        self.output.len()
    }

    /// `true` when no outputs were produced.
    pub fn is_empty(&self) -> bool {
        self.output.is_empty()
    }
}

/// The first mismatch found by [`compare_bit_accurate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// Output-sample index of the first difference.
    pub index: usize,
    /// Expected (golden) value.
    pub expected: i16,
    /// Actual value from the model under test.
    pub actual: i16,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first mismatch at output {}: expected {}, got {}",
            self.index, self.expected, self.actual
        )
    }
}

/// Compares a model's output stream with the golden one, bit for bit.
///
/// # Errors
///
/// Returns the first [`Mismatch`]; a length difference is reported as a
/// mismatch at the first missing index (with the other side's value 0).
pub fn compare_bit_accurate(golden: &[i16], actual: &[i16]) -> Result<(), Mismatch> {
    let n = golden.len().min(actual.len());
    for i in 0..n {
        if golden[i] != actual[i] {
            return Err(Mismatch {
                index: i,
                expected: golden[i],
                actual: actual[i],
            });
        }
    }
    if golden.len() != actual.len() {
        let i = n;
        return Err(Mismatch {
            index: i,
            expected: golden.get(i).copied().unwrap_or(0),
            actual: actual.get(i).copied().unwrap_or(0),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus;

    #[test]
    fn golden_vectors_are_self_consistent() {
        let cfg = SrcConfig::cd_to_dvd();
        let input = stimulus::sine(441, 1000.0, 44100.0, 9000.0);
        let g = GoldenVectors::generate(&cfg, input.clone());
        assert_eq!(g.output.len(), g.consume_schedule.len());
        let consumed: u32 = g.consume_schedule.iter().sum();
        assert!(consumed as usize <= input.len());
        // Replay through a fresh model gives the same outputs.
        let mut replay = AlgoSrc::new(&cfg);
        assert_eq!(replay.process(&g.input), g.output);
    }

    #[test]
    fn comparison_finds_first_divergence() {
        let golden = [1i16, 2, 3, 4];
        assert!(compare_bit_accurate(&golden, &[1, 2, 3, 4]).is_ok());
        let m = compare_bit_accurate(&golden, &[1, 2, 9, 4]).unwrap_err();
        assert_eq!(m.index, 2);
        assert_eq!(m.expected, 3);
        assert_eq!(m.actual, 9);
        let short = compare_bit_accurate(&golden, &[1, 2]).unwrap_err();
        assert_eq!(short.index, 2);
        assert!(m.to_string().contains("output 2"));
    }
}
