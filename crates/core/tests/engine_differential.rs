//! Differential tests: the compiled levelized engine against the
//! interpreter on every synthesisable SRC design of the flow — the five
//! variants (BEH unopt/opt, RTL unopt/opt, VHDL reference) plus the
//! buggy RTL variant — and the zero-delay gate engine against the
//! event-driven gate simulator. Byte-identical output streams and cycle
//! counts, same violation streams, on sine and seeded-noise stimuli.
//!
//! Also pins **thread-count determinism** for the partitioned gate
//! engine: outputs, violations, coverage and the rendered deterministic
//! metrics JSON must be identical at 1/2/4/8 simulation threads (the
//! `SCFLOW_SIM_THREADS` ladder), including PPSFP fault simulation run
//! over the partitioned engine.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::harness::{run_fixed, run_handshake};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_rtl::{CompiledProgram, Module, RtlSim};
use scflow_testkit::Rng;

/// The five SRC variants of the flow, plus the buggy one; `fixed` marks
/// the strobed (fixed-cycle I/O) testbench protocol.
fn variants(cfg: &SrcConfig) -> Vec<(&'static str, Module, bool)> {
    vec![
        (
            "beh_unopt",
            synthesize_beh_src(cfg, BehVariant::Unoptimised)
                .expect("beh unopt")
                .module,
            false,
        ),
        (
            "beh_opt",
            synthesize_beh_src(cfg, BehVariant::Optimised)
                .expect("beh opt")
                .module,
            true,
        ),
        (
            "rtl_unopt",
            build_rtl_src(cfg, RtlVariant::Unoptimised).expect("rtl unopt"),
            false,
        ),
        (
            "rtl_opt",
            build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl opt"),
            false,
        ),
        (
            "vhdl_ref",
            build_vhdl_ref(cfg).expect("vhdl ref"),
            false,
        ),
        (
            "rtl_buggy",
            build_rtl_src(cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy"),
            false,
        ),
    ]
}

/// Runs one module's testbench on both engines and demands identical
/// `(outputs, cycles)`; returns the output stream.
fn run_both(name: &str, module: &Module, fixed: bool, input: &[i16], expected: usize) -> Vec<i16> {
    let budget = scflow::flow::cycle_budget(expected);
    let mut int = RtlSim::new(module);
    let program = CompiledProgram::compile(module).expect("compiles");
    let mut cmp = program.simulator();
    let (int_run, cmp_run) = if fixed {
        (
            run_fixed(&mut int, input, expected, budget),
            run_fixed(&mut cmp, input, expected, budget),
        )
    } else {
        (
            run_handshake(&mut int, input, expected, budget),
            run_handshake(&mut cmp, input, expected, budget),
        )
    };
    assert_eq!(
        int_run, cmp_run,
        "`{name}`: engines must agree on the full (outputs, cycles) stream"
    );
    assert_eq!(int_run.0.len(), expected, "`{name}`: testbench completed");
    int_run.0
}

#[test]
fn all_variants_agree_on_sine() {
    for cfg in [SrcConfig::cd_to_dvd(), SrcConfig::dvd_to_cd()] {
        let input = stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let golden = GoldenVectors::generate(&cfg, input);
        for (name, module, fixed) in variants(&cfg) {
            let out = run_both(name, &module, fixed, &golden.input, golden.len());
            assert_eq!(out, golden.output, "`{name}` vs golden model");
        }
    }
}

#[test]
fn all_variants_agree_on_seeded_noise() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = Rng::new(0x1F1D_2004).i16_vec(150);
    let golden = GoldenVectors::generate(&cfg, input);
    for (name, module, fixed) in variants(&cfg) {
        let out = run_both(name, &module, fixed, &golden.input, golden.len());
        assert_eq!(out, golden.output, "`{name}` vs golden model on noise");
    }
}

/// The paper's checking-memory discipline: the optimised design inherits
/// a latent ring-buffer overrun that never corrupts an output, so only
/// address checking can expose it. The compiled engine must catch it
/// exactly like the interpreter does — same accesses, same cycles.
#[test]
fn compiled_engine_still_catches_the_buggy_variant() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(120, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let budget = scflow::flow::cycle_budget(golden.len());
    for (variant, should_violate) in [
        (RtlVariant::Optimised, false),
        (RtlVariant::OptimisedBuggy, true),
    ] {
        let module = build_rtl_src(&cfg, variant).expect("build");
        let program = CompiledProgram::compile(&module).expect("compiles");
        let mut int = RtlSim::new(&module);
        let mut cmp = program.simulator();
        int.check_addresses = true;
        cmp.check_addresses = true;
        let int_run = run_handshake(&mut int, &golden.input, golden.len(), budget);
        let cmp_run = run_handshake(&mut cmp, &golden.input, golden.len(), budget);
        assert_eq!(int_run, cmp_run, "{variant:?}: checked runs agree");
        assert_eq!(int_run.0, golden.output, "{variant:?}: outputs still clean");
        assert_eq!(
            int.violations(),
            cmp.violations(),
            "{variant:?}: identical violation streams"
        );
        assert_eq!(
            !cmp.violations().is_empty(),
            should_violate,
            "{variant:?}: the overrun is {} by the compiled engine",
            if should_violate { "caught" } else { "absent" }
        );
    }
}

/// The `SCFLOW_SIM_THREADS` ladder the determinism tests sweep. The
/// container may expose a single core — the point is exactly that
/// oversubscribed thread counts must not change any deterministic
/// artifact.
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

#[test]
fn partitioned_gate_engine_is_thread_count_deterministic() {
    use scflow_gate::{CellLibrary, GateProgram, ParGateSim, Simulation};
    use scflow_hwtypes::Bv;
    use scflow_synth::rtl::{synthesize, SynthOptions};

    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    // Short stimulus: per-level barrier storms are expensive on an
    // oversubscribed single core, and determinism needs no volume.
    let input = stimulus::sine(8, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let budget = scflow::flow::cycle_budget(golden.len());
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let nl = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synthesizes")
        .netlist;
    let prog = GateProgram::compile(&nl).expect("compiles");

    let mut reference: Option<((Vec<i16>, u64), Vec<String>, String)> = None;
    for threads in THREAD_LADDER {
        let artifacts = ParGateSim::with(&prog, threads, 1, |sim| {
            sim.set_coverage(true);
            for port in ["scan_en", "scan_in", "test_mode"] {
                if Simulation::has_input(sim, port) {
                    Simulation::poke(sim, port, Bv::zero(1));
                }
            }
            let run = run_handshake(sim, &golden.input, golden.len(), budget);
            let violations: Vec<String> =
                sim.violations().iter().map(|v| format!("{v:?}")).collect();
            // The deterministic METRICS.json body: engine counters plus
            // coverage aggregates. Wall-clock profile spans live outside
            // the registry, so the rendered JSON must be byte-stable.
            let metrics = Simulation::metrics(sim).expect("gate metrics");
            let json = scflow_obs::render_metrics_json(&metrics, None);
            (run, violations, json)
        });
        assert_eq!(
            artifacts.0 .0,
            golden.output,
            "{threads} threads: bit-accurate against the golden model"
        );
        match &reference {
            None => reference = Some(artifacts),
            Some(r) => {
                assert_eq!(r.0, artifacts.0, "{threads} threads: (outputs, cycles)");
                assert_eq!(r.1, artifacts.1, "{threads} threads: violation stream");
                assert_eq!(r.2, artifacts.2, "{threads} threads: rendered METRICS.json");
            }
        }
    }
}

#[test]
fn ppsfp_over_partitioned_is_thread_count_deterministic() {
    use scflow_gate::fault::{
        all_fault_sites, fault_coverage_instrumented_with_threads,
        fault_coverage_partitioned_with_threads, random_patterns,
    };
    use scflow_gate::{insert_scan_chain, CellKind, CellLibrary, NetlistBuilder};

    // A small scan design (the SRC netlist would be needlessly slow for
    // a determinism sweep): 2-flop XOR feedback plus an AND output.
    let mut b = NetlistBuilder::new("dut");
    let din = b.input_port("din", 1)[0];
    let q0w = b.net("q0w".into());
    let q1w = b.net("q1w".into());
    let fb = b.cell(CellKind::Xor2, &[q1w, din]);
    b.dff_onto(fb, q0w, false);
    b.dff_onto(q0w, q1w, false);
    let out = b.cell(CellKind::And2, &[q0w, q1w]);
    b.output_port("y", &[out]);
    let nl = insert_scan_chain(&b.build());

    let lib = CellLibrary::generic_025u();
    let faults = all_fault_sites(&nl);
    let patterns = random_patterns(&nl, 16, 0xD00D_2026);
    let (ref_result, ref_stats) =
        fault_coverage_instrumented_with_threads(&nl, &lib, &faults, &patterns, 1);
    assert!(ref_result.detected > 0, "patterns detect something");

    let mut ref_json: Option<String> = None;
    for sim_threads in THREAD_LADDER {
        let (result, stats) = fault_coverage_partitioned_with_threads(
            &nl, &lib, &faults, &patterns, 2, sim_threads,
        );
        assert_eq!(stats.engine, "ppsfp-par");
        assert_eq!(
            result.detected_mask, ref_result.detected_mask,
            "{sim_threads} sim threads: detected set matches plain PPSFP"
        );
        assert_eq!(
            stats.drop_curve, ref_stats.drop_curve,
            "{sim_threads} sim threads: drop curve is engine-independent"
        );
        let mut reg = scflow_obs::MetricsRegistry::new();
        stats.register_into(&mut reg, "fault.ppsfp-par");
        let json = scflow_obs::render_metrics_json(&reg, None);
        match &ref_json {
            None => ref_json = Some(json),
            Some(r) => assert_eq!(
                r, &json,
                "{sim_threads} sim threads: rendered fault metrics"
            ),
        }
    }
}
