//! Differential tests: the compiled levelized engine against the
//! interpreter on every synthesisable SRC design of the flow — the five
//! variants (BEH unopt/opt, RTL unopt/opt, VHDL reference) plus the
//! buggy RTL variant — and the zero-delay gate engine against the
//! event-driven gate simulator. Byte-identical output streams and cycle
//! counts, same violation streams, on sine and seeded-noise stimuli.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::harness::{run_fixed, run_handshake};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_rtl::{CompiledProgram, Module, RtlSim};
use scflow_testkit::Rng;

/// The five SRC variants of the flow, plus the buggy one; `fixed` marks
/// the strobed (fixed-cycle I/O) testbench protocol.
fn variants(cfg: &SrcConfig) -> Vec<(&'static str, Module, bool)> {
    vec![
        (
            "beh_unopt",
            synthesize_beh_src(cfg, BehVariant::Unoptimised)
                .expect("beh unopt")
                .module,
            false,
        ),
        (
            "beh_opt",
            synthesize_beh_src(cfg, BehVariant::Optimised)
                .expect("beh opt")
                .module,
            true,
        ),
        (
            "rtl_unopt",
            build_rtl_src(cfg, RtlVariant::Unoptimised).expect("rtl unopt"),
            false,
        ),
        (
            "rtl_opt",
            build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl opt"),
            false,
        ),
        (
            "vhdl_ref",
            build_vhdl_ref(cfg).expect("vhdl ref"),
            false,
        ),
        (
            "rtl_buggy",
            build_rtl_src(cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy"),
            false,
        ),
    ]
}

/// Runs one module's testbench on both engines and demands identical
/// `(outputs, cycles)`; returns the output stream.
fn run_both(name: &str, module: &Module, fixed: bool, input: &[i16], expected: usize) -> Vec<i16> {
    let budget = scflow::flow::cycle_budget(expected);
    let mut int = RtlSim::new(module);
    let program = CompiledProgram::compile(module).expect("compiles");
    let mut cmp = program.simulator();
    let (int_run, cmp_run) = if fixed {
        (
            run_fixed(&mut int, input, expected, budget),
            run_fixed(&mut cmp, input, expected, budget),
        )
    } else {
        (
            run_handshake(&mut int, input, expected, budget),
            run_handshake(&mut cmp, input, expected, budget),
        )
    };
    assert_eq!(
        int_run, cmp_run,
        "`{name}`: engines must agree on the full (outputs, cycles) stream"
    );
    assert_eq!(int_run.0.len(), expected, "`{name}`: testbench completed");
    int_run.0
}

#[test]
fn all_variants_agree_on_sine() {
    for cfg in [SrcConfig::cd_to_dvd(), SrcConfig::dvd_to_cd()] {
        let input = stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let golden = GoldenVectors::generate(&cfg, input);
        for (name, module, fixed) in variants(&cfg) {
            let out = run_both(name, &module, fixed, &golden.input, golden.len());
            assert_eq!(out, golden.output, "`{name}` vs golden model");
        }
    }
}

#[test]
fn all_variants_agree_on_seeded_noise() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = Rng::new(0x1F1D_2004).i16_vec(150);
    let golden = GoldenVectors::generate(&cfg, input);
    for (name, module, fixed) in variants(&cfg) {
        let out = run_both(name, &module, fixed, &golden.input, golden.len());
        assert_eq!(out, golden.output, "`{name}` vs golden model on noise");
    }
}

/// The paper's checking-memory discipline: the optimised design inherits
/// a latent ring-buffer overrun that never corrupts an output, so only
/// address checking can expose it. The compiled engine must catch it
/// exactly like the interpreter does — same accesses, same cycles.
#[test]
fn compiled_engine_still_catches_the_buggy_variant() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(120, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let budget = scflow::flow::cycle_budget(golden.len());
    for (variant, should_violate) in [
        (RtlVariant::Optimised, false),
        (RtlVariant::OptimisedBuggy, true),
    ] {
        let module = build_rtl_src(&cfg, variant).expect("build");
        let program = CompiledProgram::compile(&module).expect("compiles");
        let mut int = RtlSim::new(&module);
        let mut cmp = program.simulator();
        int.check_addresses = true;
        cmp.check_addresses = true;
        let int_run = run_handshake(&mut int, &golden.input, golden.len(), budget);
        let cmp_run = run_handshake(&mut cmp, &golden.input, golden.len(), budget);
        assert_eq!(int_run, cmp_run, "{variant:?}: checked runs agree");
        assert_eq!(int_run.0, golden.output, "{variant:?}: outputs still clean");
        assert_eq!(
            int.violations(),
            cmp.violations(),
            "{variant:?}: identical violation streams"
        );
        assert_eq!(
            !cmp.violations().is_empty(),
            should_violate,
            "{variant:?}: the overrun is {} by the compiled engine",
            if should_violate { "caught" } else { "absent" }
        );
    }
}
