//! The refinement flow's central invariant: **every level is bit-accurate
//! against the golden model** — the check the paper performed after each
//! refinement step.

use scflow::models::beh::{run_beh_model, BehVariant};
use scflow::models::channel::run_channel_model;
use scflow::models::refined::run_refined_model;
use scflow::models::rtl::{build_rtl_src, run_rtl_model, RtlVariant};
use scflow::verify::{compare_bit_accurate, GoldenVectors};
use scflow::{stimulus, SrcConfig};

fn golden(cfg: &SrcConfig, n: usize) -> GoldenVectors {
    let input = stimulus::sine(n, 1000.0, f64::from(cfg.in_rate), 9000.0);
    GoldenVectors::generate(cfg, input)
}

#[test]
fn channel_model_is_bit_accurate_up() {
    let cfg = SrcConfig::cd_to_dvd();
    let g = golden(&cfg, 300);
    let run = run_channel_model(&cfg, &g.input);
    compare_bit_accurate(&g.output, &run.outputs).expect("channel model");
    assert!(run.sim_time.as_ps() > 0);
}

#[test]
fn channel_model_is_bit_accurate_down() {
    let cfg = SrcConfig::dvd_to_cd();
    let g = golden(&cfg, 300);
    let run = run_channel_model(&cfg, &g.input);
    compare_bit_accurate(&g.output, &run.outputs).expect("channel model down");
}

#[test]
fn refined_channel_is_bit_accurate() {
    for cfg in [SrcConfig::cd_to_dvd(), SrcConfig::dvd_to_cd()] {
        let g = golden(&cfg, 300);
        let run = run_refined_model(&cfg, &g.input);
        compare_bit_accurate(&g.output, &run.outputs)
            .unwrap_or_else(|m| panic!("refined model {}->{}: {m}", cfg.in_rate, cfg.out_rate));
    }
}

#[test]
fn clocked_behavioural_model_is_bit_accurate() {
    for cfg in [SrcConfig::cd_to_dvd(), SrcConfig::dvd_to_cd()] {
        let g = golden(&cfg, 120);
        let run = run_beh_model(&cfg, &g.input);
        compare_bit_accurate(&g.output, &run.outputs)
            .unwrap_or_else(|m| panic!("beh model {}->{}: {m}", cfg.in_rate, cfg.out_rate));
        assert!(run.clock_cycles.unwrap() > 0);
    }
}

#[test]
fn clocked_rtl_model_is_bit_accurate() {
    for cfg in [SrcConfig::cd_to_dvd(), SrcConfig::dvd_to_cd()] {
        let g = golden(&cfg, 120);
        let run = run_rtl_model(&cfg, &g.input);
        compare_bit_accurate(&g.output, &run.outputs)
            .unwrap_or_else(|m| panic!("rtl model {}->{}: {m}", cfg.in_rate, cfg.out_rate));
    }
}

#[test]
fn all_synthesisable_levels_validate_up() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(150, 1000.0, 44100.0, 9000.0);
    scflow::flow::validate_all_levels(&cfg, &input).expect("all levels bit-accurate");
}

#[test]
fn all_synthesisable_levels_validate_down() {
    let cfg = SrcConfig::dvd_to_cd();
    let input = stimulus::sweep(150, 100.0, 15000.0, 48000.0, 9000.0);
    scflow::flow::validate_all_levels(&cfg, &input).expect("all levels bit-accurate (down)");
}

#[test]
fn rtl_variants_agree_with_each_other() {
    let cfg = SrcConfig::dvd_to_cd();
    let g = golden(&cfg, 200);
    let mut outs = Vec::new();
    for variant in [
        RtlVariant::Unoptimised,
        RtlVariant::Optimised,
        RtlVariant::OptimisedBuggy,
    ] {
        let m = build_rtl_src(&cfg, variant).expect("build");
        let mut sim = scflow_rtl::RtlSim::new(&m);
        let (o, _) = scflow::models::harness::run_handshake(
            &mut sim,
            &g.input,
            g.len(),
            scflow::flow::cycle_budget(g.len()),
        );
        outs.push(o);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    compare_bit_accurate(&g.output, &outs[0]).expect("rtl vs golden");
}

#[test]
fn kernel_models_report_activity() {
    let cfg = SrcConfig::cd_to_dvd();
    let g = golden(&cfg, 60);
    let ch = run_channel_model(&cfg, &g.input);
    let beh = run_beh_model(&cfg, &g.input);
    let rtl = run_rtl_model(&cfg, &g.input);
    // The refinement cost gradient the paper's Figure 8 rests on:
    // more detailed models burn more kernel activity for the same work.
    let polls = |r: &scflow::models::SimRun| r.stats.as_ref().unwrap().processes_polled;
    assert!(polls(&beh) > polls(&ch) * 3);
    assert!(polls(&rtl) > polls(&beh));
}

#[test]
fn beh_variants_have_decreasing_registers() {
    let cfg = SrcConfig::cd_to_dvd();
    let unopt = scflow::models::beh::synthesize_beh_src(&cfg, BehVariant::Unoptimised)
        .expect("beh unopt");
    let opt =
        scflow::models::beh::synthesize_beh_src(&cfg, BehVariant::Optimised).expect("beh opt");
    assert!(
        unopt.report.register_bits > opt.report.register_bits,
        "unopt {} vs opt {}",
        unopt.report.register_bits,
        opt.report.register_bits
    );
    assert!(unopt.report.states >= opt.report.states);
}

#[test]
fn time_quantisation_appears_at_the_clocked_levels() {
    // The paper's Figure 7: event times in the clocked implementation can
    // only fall on clock edges, unlike the continuous-time channel model.
    let cfg = SrcConfig::cd_to_dvd();
    let g = golden(&cfg, 60);
    let period = scflow::models::beh::CLOCK_PERIOD.as_ps();

    let beh = run_beh_model(&cfg, &g.input);
    assert_eq!(beh.output_times.len(), g.len());
    for t in &beh.output_times {
        assert_eq!(
            t.as_ps() % period,
            period / 2,
            "clocked output at {t} is off the rising-edge grid"
        );
    }

    let chan = run_channel_model(&cfg, &g.input);
    assert!(
        chan.output_times
            .iter()
            .any(|t| t.as_ps() % period != period / 2),
        "continuous-time model should not be clock-quantised"
    );
}

#[test]
fn differential_kernel_models_agree_on_seeded_noise() {
    // The paper's per-refinement-step re-validation, run differentially:
    // every kernel model against the golden stream on random stimuli, with
    // the earliest divergence (signal, index, both values) reported.
    use scflow_testkit::diff::first_divergence_multi;
    use scflow_testkit::Rng;

    let cfg = SrcConfig::cd_to_dvd();
    let mut seeds = Rng::new(0xD1FF_0001);
    for _ in 0..3 {
        let seed = seeds.next_u64();
        let g = GoldenVectors::generate(&cfg, stimulus::noise(240, 9_000, seed));
        let chan = run_channel_model(&cfg, &g.input).outputs;
        let refined = run_refined_model(&cfg, &g.input).outputs;
        let beh = run_beh_model(&cfg, &g.input).outputs;
        let rtl = run_rtl_model(&cfg, &g.input).outputs;
        if let Some(d) = first_divergence_multi(&[
            ("channel.out", &g.output, &chan),
            ("refined.out", &g.output, &refined),
            ("beh.out", &g.output, &beh),
            ("rtl.out", &g.output, &rtl),
        ]) {
            panic!("stimulus seed {seed:#x}: {d}");
        }
    }
}

#[test]
fn differential_divergence_reports_the_injected_bug() {
    // Negative control: the deliberately buggy RTL variant must be caught
    // by the same differential harness, with a located first divergence.
    use scflow_testkit::diff::diff_models;

    let cfg = SrcConfig::dvd_to_cd();
    let g = golden(&cfg, 200);
    let run_variant = |variant: RtlVariant, input: &Vec<i16>| {
        let m = build_rtl_src(&cfg, variant).expect("build");
        let mut sim = scflow_rtl::RtlSim::new(&m);
        scflow::models::harness::run_handshake(
            &mut sim,
            input,
            g.len(),
            scflow::flow::cycle_budget(g.len()),
        )
        .0
    };
    // The buggy variant is output-equivalent (the bug is a latent buffer
    // overrun, not a data error), so the differential run must stay clean.
    let agreed = diff_models(
        "rtl.out",
        &g.input,
        |s| run_variant(RtlVariant::Optimised, s),
        |s| run_variant(RtlVariant::OptimisedBuggy, s),
    )
    .expect("output-equivalent variants");
    assert_eq!(agreed, g.len());

    // A genuinely wrong model (off-by-one gain) is located at its first
    // bad sample.
    let d = diff_models(
        "rtl.out",
        &g.input,
        |s| run_variant(RtlVariant::Optimised, s),
        |s| {
            run_variant(RtlVariant::Optimised, s)
                .into_iter()
                .map(|v| v.saturating_add(1))
                .collect()
        },
    )
    .expect_err("perturbed stream must diverge");
    assert_eq!(d.index, 0);
    assert_eq!(d.signal, "rtl.out");
}
