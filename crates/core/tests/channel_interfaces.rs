//! Tests for the hierarchical channel's three interfaces (the paper's
//! `SRC_CTRL`, `SampleWriteIF`, `SampleReadIF`) used directly from
//! producer/consumer processes, including mode switching.

use scflow::models::channel::SrcChannel;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_kernel::{Kernel, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn interface_methods_drive_the_channel() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(120, 1000.0, 44_100.0, 9_000.0);
    let golden = GoldenVectors::generate(&cfg, input.clone());

    let kernel = Kernel::new();
    let channel = SrcChannel::new(&kernel, &cfg);
    let collected: Rc<RefCell<Vec<i16>>> = Rc::new(RefCell::new(Vec::new()));

    kernel.spawn("producer", {
        let (k, ch) = (kernel.clone(), channel.clone());
        async move {
            for s in input {
                // SampleWriteIF
                ch.write_sample(&k, s).await;
                k.wait_time(SimTime::from_us(20)).await;
            }
        }
    });
    kernel.spawn("consumer", {
        let (k, ch, collected) = (kernel.clone(), channel.clone(), collected.clone());
        let expected = golden.len();
        async move {
            for _ in 0..expected {
                // SampleReadIF
                let y = ch.read_sample(&k).await;
                collected.borrow_mut().push(y);
            }
            k.stop();
        }
    });
    kernel.run();
    assert_eq!(&*collected.borrow(), &golden.output);
}

#[test]
fn ctrl_interface_switches_mode() {
    // Run a few samples in up-conversion, then reconfigure to
    // down-conversion via SRC_CTRL and verify the new behaviour.
    let up = SrcConfig::cd_to_dvd();
    let down = SrcConfig::dvd_to_cd();

    let kernel = Kernel::new();
    let channel = SrcChannel::new(&kernel, &up);

    // Phase 1: feed 50 samples at the up-conversion rate.
    let in1 = stimulus::sine(50, 1000.0, 44_100.0, 9_000.0);
    let n1 = Rc::new(RefCell::new(0usize));
    kernel.spawn("phase1", {
        let (k, ch, n1) = (kernel.clone(), channel.clone(), n1.clone());
        let in1 = in1.clone();
        async move {
            for s in in1 {
                ch.write_sample(&k, s).await;
                // Drain as we go so neither FIFO backs up.
                while ch.try_read_sample().is_some() {
                    *n1.borrow_mut() += 1;
                }
            }
            // Collect stragglers.
            for _ in 0..3 {
                k.wait_time(SimTime::from_us(50)).await;
                while ch.try_read_sample().is_some() {
                    *n1.borrow_mut() += 1;
                }
            }
            k.stop();
        }
    });
    kernel.run();
    let phase1 = *n1.borrow();
    assert!(phase1 > 50, "upsampling should produce > inputs, got {phase1}");

    // SRC_CTRL: switch operation mode (resets converter state).
    channel.set_mode(&down);

    let in2 = stimulus::sine(50, 1000.0, 48_000.0, 9_000.0);
    let n2 = Rc::new(RefCell::new(0usize));
    kernel.spawn("phase2", {
        let (k, ch, n2) = (kernel.clone(), channel.clone(), n2.clone());
        async move {
            for s in in2 {
                ch.write_sample(&k, s).await;
                while ch.try_read_sample().is_some() {
                    *n2.borrow_mut() += 1;
                }
            }
            for _ in 0..3 {
                k.wait_time(SimTime::from_us(50)).await;
                while ch.try_read_sample().is_some() {
                    *n2.borrow_mut() += 1;
                }
            }
            k.stop();
        }
    });
    kernel.run();
    let phase2 = *n2.borrow();
    assert!(
        phase2 < 50 && phase2 > 30,
        "downsampling should produce < inputs, got {phase2}"
    );
}
