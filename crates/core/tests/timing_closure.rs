//! "The timing goal could be easily achieved by all implementations" —
//! every synthesised variant must meet the paper's 40 ns clock, with
//! comfortable slack.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::SrcConfig;
use scflow_gate::CellLibrary;
use scflow_synth::rtl::{synthesize, SynthOptions};

const CLOCK_PS: u64 = 40_000;

fn all_designs(cfg: &SrcConfig) -> Vec<(String, scflow_rtl::Module)> {
    vec![
        ("VHDL-Ref".into(), build_vhdl_ref(cfg).expect("ref")),
        (
            "BEH unopt".into(),
            synthesize_beh_src(cfg, BehVariant::Unoptimised)
                .expect("beh")
                .module,
        ),
        (
            "BEH opt".into(),
            synthesize_beh_src(cfg, BehVariant::Optimised)
                .expect("beh")
                .module,
        ),
        (
            "RTL unopt".into(),
            build_rtl_src(cfg, RtlVariant::Unoptimised).expect("rtl"),
        ),
        (
            "RTL opt".into(),
            build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl"),
        ),
    ]
}

#[test]
fn every_design_meets_the_40ns_clock() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    for (name, module) in all_designs(&cfg) {
        let r = synthesize(&module, &lib, &SynthOptions::default()).expect("synth");
        assert!(
            r.timing.meets(CLOCK_PS),
            "{name}: critical path {} ps misses the 40 ns clock",
            r.timing.critical_path_ps
        );
        // "easily achieved": at least 40% slack everywhere.
        assert!(
            r.timing.slack_ps(CLOCK_PS) > (CLOCK_PS as i64) * 2 / 5,
            "{name}: slack {} ps is uncomfortably small",
            r.timing.slack_ps(CLOCK_PS)
        );
    }
}

#[test]
fn timing_holds_for_the_downsampling_configuration_too() {
    let cfg = SrcConfig::dvd_to_cd();
    let lib = CellLibrary::generic_025u();
    for (name, module) in all_designs(&cfg) {
        let r = synthesize(&module, &lib, &SynthOptions::default()).expect("synth");
        assert!(r.timing.meets(CLOCK_PS), "{name} misses timing");
    }
}

#[test]
fn scan_insertion_does_not_break_timing() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let with_scan = synthesize(&m, &lib, &SynthOptions::default()).expect("synth");
    let without = synthesize(
        &m,
        &lib,
        &SynthOptions {
            insert_scan: false,
            ..SynthOptions::default()
        },
    )
    .expect("synth");
    assert!(with_scan.timing.meets(CLOCK_PS));
    // The scan mux only changes clk->Q; the only combinational cost is
    // the RAM read bypass (one Mux2 on each read-data path), so the
    // critical path may grow by at most one mux delay.
    use scflow_gate::CellKind;
    let bypass = lib.delay(CellKind::Mux2);
    assert!(
        with_scan.timing.critical_path_ps
            <= without.timing.critical_path_ps + bypass + 100,
        "scan insertion distorted the data path beyond the read-bypass mux: \
         {} ps with scan vs {} ps without",
        with_scan.timing.critical_path_ps,
        without.timing.critical_path_ps
    );
}
