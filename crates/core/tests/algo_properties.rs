//! Property-based tests on the algorithmic SRC and its configuration:
//! rate-ratio conservation, streaming equivalence, phase-accumulator
//! invariants, bug-injection transparency.

use proptest::prelude::*;
use scflow::algo::AlgoSrc;
use scflow::verify::GoldenVectors;
use scflow::SrcConfig;

/// Audio-plausible rate pairs within the supported ratio (< 2x down).
fn rates() -> impl Strategy<Value = (u32, u32)> {
    (8_000u32..96_000, 8_000u32..96_000)
        .prop_filter("ratio limit", |(i, o)| *i < 2 * *o)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn accumulator_invariants_hold_for_any_rate_pair((in_rate, out_rate) in rates()) {
        let cfg = SrcConfig::new(in_rate, out_rate);
        let mut acc = 0u32;
        let mut consumed = 0u64;
        let n = 10_000u64;
        for _ in 0..n {
            let (a, c, p) = cfg.advance(acc);
            prop_assert!(c <= 2, "consume {c}");
            prop_assert!(p < SrcConfig::PHASES as u32);
            prop_assert!(a < 1 << SrcConfig::PHASE_FRAC_BITS);
            consumed += u64::from(c);
            acc = a;
        }
        // Long-run consumption tracks the rate ratio to within rounding.
        let expect = n as f64 * f64::from(in_rate) / f64::from(out_rate);
        prop_assert!(
            (consumed as f64 - expect).abs() < 2.0 + expect * 1e-6,
            "consumed {consumed}, expected {expect}"
        );
    }

    #[test]
    fn output_count_tracks_ratio(
        (in_rate, out_rate) in rates(),
        n_in in 100usize..2_000,
    ) {
        let cfg = SrcConfig::new(in_rate, out_rate);
        let input = vec![0i16; n_in];
        let out = AlgoSrc::new(&cfg).process(&input);
        let ratio = f64::from(out_rate) / f64::from(in_rate);
        let expect = n_in as f64 * ratio;
        // Slack: one output per unconsumed tail sample (up to `ratio`
        // outputs can be produced per input) plus accumulator rounding.
        prop_assert!(
            (out.len() as f64 - expect).abs() <= 2.0 + 2.0 * ratio,
            "{} outputs, expected ~{expect}",
            out.len()
        );
    }

    /// Streaming in arbitrary chunks equals batch processing exactly.
    #[test]
    fn chunked_processing_equals_batch(
        samples in proptest::collection::vec(any::<i16>(), 50..400),
        chunk_sizes in proptest::collection::vec(1usize..40, 1..20),
    ) {
        let cfg = SrcConfig::dvd_to_cd();
        let batch = AlgoSrc::new(&cfg).process(&samples);

        let mut streamed = AlgoSrc::new(&cfg);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut k = 0usize;
        while pos < samples.len() {
            let len = chunk_sizes[k % chunk_sizes.len()].min(samples.len() - pos);
            out.extend(streamed.process(&samples[pos..pos + len]));
            pos += len;
            k += 1;
        }
        prop_assert_eq!(out, batch);
    }

    /// The injected bug never changes data, for arbitrary input.
    #[test]
    fn buffer_bug_is_data_transparent(
        samples in proptest::collection::vec(any::<i16>(), 100..500),
    ) {
        let cfg = SrcConfig::dvd_to_cd();
        let clean = AlgoSrc::new(&cfg).process(&samples);
        let buggy = AlgoSrc::new(&cfg).with_buffer_bug().process(&samples);
        prop_assert_eq!(clean, buggy);
    }

    /// Golden vectors: consume schedule sums to the inputs actually used,
    /// and replay reproduces the outputs.
    #[test]
    fn golden_vector_consistency(
        samples in proptest::collection::vec(any::<i16>(), 50..300),
    ) {
        let cfg = SrcConfig::cd_to_dvd();
        let g = GoldenVectors::generate(&cfg, samples);
        prop_assert_eq!(g.output.len(), g.consume_schedule.len());
        let used: u32 = g.consume_schedule.iter().sum();
        prop_assert!((used as usize) <= g.input.len());
        // Unused tail shorter than the largest consume step.
        prop_assert!(g.input.len() - used as usize <= 2);
        let replay = AlgoSrc::new(&cfg).process(&g.input);
        prop_assert_eq!(replay, g.output);
    }

    /// Output magnitude is bounded by input magnitude plus filter headroom
    /// (no unexpected overflow in the fixed-point pipeline).
    #[test]
    fn no_spurious_overflow_for_half_scale_inputs(
        seed in any::<u64>(),
    ) {
        let cfg = SrcConfig::cd_to_dvd();
        let input = scflow::stimulus::noise(800, 16_000, seed);
        let out = AlgoSrc::new(&cfg).process(&input);
        // Kaiser-sinc overshoot is bounded; half-scale inputs never wrap.
        for &s in &out {
            prop_assert!((i32::from(s)).abs() < 29_000, "sample {s}");
        }
    }
}

/// Pin the designed coefficient ROM: any change to the filter design math
/// silently breaks cross-version bit-accuracy of every stored golden
/// vector, so drift must be deliberate.
#[test]
fn coefficient_rom_is_pinned() {
    let rom = scflow::CoefficientRom::design(&SrcConfig::cd_to_dvd());
    let words = rom.words();
    assert_eq!(words.len(), 256);
    // FNV-1a over the raw words.
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        h ^= (w as u16) as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let expected = 0x97a2_8f7a_0c79_6903u64;
    assert_eq!(
        h, expected,
        "coefficient design changed (new hash {h:#018x}); if intentional, \
         update this pin and note it in the changelog"
    );
}
