//! Property-based tests on the algorithmic SRC and its configuration:
//! rate-ratio conservation, streaming equivalence, phase-accumulator
//! invariants, bug-injection transparency. Runs on the in-repo
//! `scflow-testkit` runner; when a property fails it prints a seed —
//! pin that seed in the `regression_seeds` module below so the case is
//! replayed forever.

use scflow::algo::AlgoSrc;
use scflow::verify::GoldenVectors;
use scflow::SrcConfig;
use scflow_testkit::prop::{
    check_seeded, check_with, ints, vecs, Config, Filter, IntRange, StrategyExt, VecStrategy,
};
use scflow_testkit::{prop_assert, prop_assert_eq};

type RatePair = Filter<(IntRange<u32>, IntRange<u32>), fn(&(u32, u32)) -> bool>;

/// Audio-plausible rate pairs within the supported ratio (< 2x down).
fn rates() -> RatePair {
    (ints(8_000u32..=95_999), ints(8_000u32..=95_999))
        .filter("ratio limit", |(i, o)| *i < 2 * *o)
}

fn samples(min: usize, max: usize) -> VecStrategy<IntRange<i16>> {
    vecs(ints(i16::MIN..=i16::MAX), min..=max)
}

fn cases(n: u32) -> Config {
    Config::from_env().with_cases(n)
}

fn accumulator_invariants(&(in_rate, out_rate): &(u32, u32)) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::new(in_rate, out_rate);
    let mut acc = 0u32;
    let mut consumed = 0u64;
    let n = 10_000u64;
    for _ in 0..n {
        let (a, c, p) = cfg.advance(acc);
        prop_assert!(c <= 2, "consume {c}");
        prop_assert!(p < SrcConfig::PHASES as u32);
        prop_assert!(a < 1 << SrcConfig::PHASE_FRAC_BITS);
        consumed += u64::from(c);
        acc = a;
    }
    // Long-run consumption tracks the rate ratio to within rounding.
    let expect = n as f64 * f64::from(in_rate) / f64::from(out_rate);
    prop_assert!(
        (consumed as f64 - expect).abs() < 2.0 + expect * 1e-6,
        "consumed {consumed}, expected {expect}"
    );
    Ok(())
}

#[test]
fn accumulator_invariants_hold_for_any_rate_pair() {
    check_with(&cases(40), "accumulator invariants", &rates(), accumulator_invariants);
}

fn output_count(&((in_rate, out_rate), n_in): &((u32, u32), usize)) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::new(in_rate, out_rate);
    let input = vec![0i16; n_in];
    let out = AlgoSrc::new(&cfg).process(&input);
    let ratio = f64::from(out_rate) / f64::from(in_rate);
    let expect = n_in as f64 * ratio;
    // Slack: one output per unconsumed tail sample (up to `ratio`
    // outputs can be produced per input) plus accumulator rounding.
    prop_assert!(
        (out.len() as f64 - expect).abs() <= 2.0 + 2.0 * ratio,
        "{} outputs, expected ~{expect}",
        out.len()
    );
    Ok(())
}

#[test]
fn output_count_tracks_ratio() {
    check_with(
        &cases(40),
        "output count tracks ratio",
        &(rates(), ints(100usize..=1_999)),
        output_count,
    );
}

/// Streaming in arbitrary chunks equals batch processing exactly.
fn chunked_equals_batch(
    (samples, chunk_sizes): &(Vec<i16>, Vec<usize>),
) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::dvd_to_cd();
    let batch = AlgoSrc::new(&cfg).process(samples);

    let mut streamed = AlgoSrc::new(&cfg);
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut k = 0usize;
    while pos < samples.len() {
        let len = chunk_sizes[k % chunk_sizes.len()].min(samples.len() - pos);
        out.extend(streamed.process(&samples[pos..pos + len]));
        pos += len;
        k += 1;
    }
    prop_assert_eq!(out, batch);
    Ok(())
}

#[test]
fn chunked_processing_equals_batch() {
    check_with(
        &cases(64),
        "chunked processing equals batch",
        &(samples(50, 400), vecs(ints(1usize..=39), 1..=19)),
        chunked_equals_batch,
    );
}

/// The injected bug never changes data, for arbitrary input.
fn buffer_bug_transparent(samples: &Vec<i16>) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::dvd_to_cd();
    let clean = AlgoSrc::new(&cfg).process(samples);
    let buggy = AlgoSrc::new(&cfg).with_buffer_bug().process(samples);
    prop_assert_eq!(clean, buggy);
    Ok(())
}

#[test]
fn buffer_bug_is_data_transparent() {
    check_with(
        &cases(64),
        "buffer bug is data transparent",
        &samples(100, 500),
        buffer_bug_transparent,
    );
}

/// Golden vectors: consume schedule sums to the inputs actually used,
/// and replay reproduces the outputs.
fn golden_consistency(samples: &Vec<i16>) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::cd_to_dvd();
    let g = GoldenVectors::generate(&cfg, samples.clone());
    prop_assert_eq!(g.output.len(), g.consume_schedule.len());
    let used: u32 = g.consume_schedule.iter().sum();
    prop_assert!((used as usize) <= g.input.len());
    // Unused tail shorter than the largest consume step.
    prop_assert!(g.input.len() - used as usize <= 2);
    let replay = AlgoSrc::new(&cfg).process(&g.input);
    prop_assert_eq!(replay, g.output);
    Ok(())
}

#[test]
fn golden_vector_consistency() {
    check_with(
        &cases(64),
        "golden vector consistency",
        &samples(50, 300),
        golden_consistency,
    );
}

/// Output magnitude is bounded by input magnitude plus filter headroom
/// (no unexpected overflow in the fixed-point pipeline).
fn no_spurious_overflow(&seed: &u64) -> scflow_testkit::TestResult {
    let cfg = SrcConfig::cd_to_dvd();
    let input = scflow::stimulus::noise(800, 16_000, seed);
    let out = AlgoSrc::new(&cfg).process(&input);
    // Kaiser-sinc overshoot is bounded; half-scale inputs never wrap.
    for &s in &out {
        prop_assert!((i32::from(s)).abs() < 29_000, "sample {s}");
    }
    Ok(())
}

#[test]
fn no_spurious_overflow_for_half_scale_inputs() {
    check_with(
        &cases(64),
        "no spurious overflow",
        &ints(0u64..=u64::MAX),
        no_spurious_overflow,
    );
}

/// Pinned replays of once-failing (or structurally nasty) cases: when a
/// property fails it prints `SCFLOW_PROPTEST_SEED=0x…` — add that seed
/// here so the exact case is regenerated on every future run.
mod regression_seeds {
    use super::*;

    /// Extreme downsampling ratio boundary (in just below 2*out).
    #[test]
    fn accumulator_boundary_ratio() {
        check_seeded(
            "regression: accumulator",
            0x0B5E_55ED_0000_0001,
            &rates(),
            accumulator_invariants,
        );
        // Deliberately adversarial pair near the ratio limit.
        accumulator_invariants(&(95_999, 48_000)).unwrap();
    }

    #[test]
    fn output_count_extremes() {
        check_seeded(
            "regression: output count",
            0x0B5E_55ED_0000_0002,
            &(rates(), ints(100usize..=1_999)),
            output_count,
        );
        output_count(&((8_000, 95_999), 1_999)).unwrap();
    }

    #[test]
    fn chunked_single_sample_chunks() {
        check_seeded(
            "regression: chunking",
            0x0B5E_55ED_0000_0003,
            &(samples(50, 400), vecs(ints(1usize..=39), 1..=19)),
            chunked_equals_batch,
        );
        // All-ones chunk schedule: maximum streaming-state churn.
        let stim: Vec<i16> = (0..200).map(|i| (i * 331 % 17_000) as i16).collect();
        chunked_equals_batch(&(stim, vec![1usize])).unwrap();
    }

    #[test]
    fn buffer_bug_full_scale() {
        check_seeded(
            "regression: buffer bug",
            0x0B5E_55ED_0000_0004,
            &samples(100, 500),
            buffer_bug_transparent,
        );
        buffer_bug_transparent(&vec![i16::MIN; 128]).unwrap();
    }

    #[test]
    fn golden_minimum_length() {
        check_seeded(
            "regression: golden vectors",
            0x0B5E_55ED_0000_0005,
            &samples(50, 300),
            golden_consistency,
        );
        golden_consistency(&vec![i16::MAX; 50]).unwrap();
    }

    #[test]
    fn overflow_seed_zero() {
        // noise(seed=0) degenerates to the `seed | 1` stream — keep it.
        no_spurious_overflow(&0).unwrap();
        no_spurious_overflow(&u64::MAX).unwrap();
    }
}

/// Pin the designed coefficient ROM: any change to the filter design math
/// silently breaks cross-version bit-accuracy of every stored golden
/// vector, so drift must be deliberate.
#[test]
fn coefficient_rom_is_pinned() {
    let rom = scflow::CoefficientRom::design(&SrcConfig::cd_to_dvd());
    let words = rom.words();
    assert_eq!(words.len(), 256);
    // FNV-1a over the raw words via the workspace-wide hasher.
    let mut fnv = scflow_hwtypes::Fnv64::new();
    for &w in words {
        fnv.write_u64((w as u16) as u64);
    }
    let h = fnv.finish();
    let expected = 0x6b0c_70d9_c29d_b208u64;
    assert_eq!(
        h, expected,
        "coefficient design changed (new hash {h:#018x}); if intentional, \
         update this pin and note it in the changelog"
    );
}
