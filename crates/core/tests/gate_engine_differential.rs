//! Differential tests at gate level: every synthesisable SRC variant
//! (plus the buggy one) is synthesized to the 0.25 µm library and run on
//! the event-driven simulator, the zero-delay levelized fast mode, the
//! compiled bit-parallel engine and the partitioned multi-threaded
//! engine — byte-identical output streams, cycle counts and
//! checking-memory violation streams demanded across all four.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::harness::{run_fixed, run_handshake};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_gate::{
    sim_threads, CellLibrary, FastGateSim, GateProgram, GateSim, MemAccessViolation, ParGateSim,
    Simulation,
};
use scflow_rtl::Module;
use scflow_synth::rtl::{synthesize, SynthOptions};

/// The five SRC variants of the flow, plus the buggy one; `fixed` marks
/// the strobed (fixed-cycle I/O) testbench protocol.
fn variants(cfg: &SrcConfig) -> Vec<(&'static str, Module, bool)> {
    vec![
        (
            "beh_unopt",
            synthesize_beh_src(cfg, BehVariant::Unoptimised)
                .expect("beh unopt")
                .module,
            false,
        ),
        (
            "beh_opt",
            synthesize_beh_src(cfg, BehVariant::Optimised)
                .expect("beh opt")
                .module,
            true,
        ),
        (
            "rtl_unopt",
            build_rtl_src(cfg, RtlVariant::Unoptimised).expect("rtl unopt"),
            false,
        ),
        (
            "rtl_opt",
            build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl opt"),
            false,
        ),
        (
            "vhdl_ref",
            build_vhdl_ref(cfg).expect("vhdl ref"),
            false,
        ),
        (
            "rtl_buggy",
            build_rtl_src(cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy"),
            false,
        ),
    ]
}

/// Holds the scan interface inactive for a functional run.
fn tie_off_scan(sim: &mut (impl Simulation + ?Sized)) {
    use scflow_hwtypes::Bv;
    for port in ["scan_en", "scan_in", "test_mode"] {
        if sim.has_input(port) {
            sim.poke(port, Bv::zero(1));
        }
    }
}

fn run_one(
    sim: &mut (impl Simulation + ?Sized),
    fixed: bool,
    input: &[i16],
    expected: usize,
    budget: u64,
) -> (Vec<i16>, u64) {
    tie_off_scan(sim);
    if fixed {
        run_fixed(sim, input, expected, budget)
    } else {
        run_handshake(sim, input, expected, budget)
    }
}

#[test]
fn gate_engines_agree_on_every_variant() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(16, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let budget = scflow::flow::cycle_budget(golden.len());

    let mut buggy_violations: Vec<MemAccessViolation> = Vec::new();
    for (name, module, fixed) in variants(&cfg) {
        let nl = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;

        let mut ev = GateSim::new(&nl, &lib);
        let ev_run = run_one(&mut ev, fixed, &golden.input, golden.len(), budget);
        assert_eq!(ev_run.0.len(), golden.len(), "`{name}`: testbench completed");
        assert_eq!(ev_run.0, golden.output, "`{name}`: gate level bit-accurate");

        let mut fast = FastGateSim::new(&nl).expect("levelizes");
        let fast_run = run_one(&mut fast, fixed, &golden.input, golden.len(), budget);
        assert_eq!(ev_run, fast_run, "`{name}`: fast engine (outputs, cycles)");
        assert_eq!(
            ev.violations(),
            fast.violations(),
            "`{name}`: fast engine violation stream"
        );

        let prog = GateProgram::compile(&nl).expect("compiles");
        let mut bp = prog.simulator();
        let bp_run = run_one(&mut bp, fixed, &golden.input, golden.len(), budget);
        assert_eq!(ev_run, bp_run, "`{name}`: bit-parallel (outputs, cycles)");
        assert_eq!(
            ev.violations(),
            bp.violations(),
            "`{name}`: bit-parallel violation stream"
        );

        let (par_run, par_violations) = ParGateSim::with(&prog, sim_threads(), 1, |par| {
            let run = run_one(par, fixed, &golden.input, golden.len(), budget);
            (run, par.violations().to_vec())
        });
        assert_eq!(ev_run, par_run, "`{name}`: partitioned (outputs, cycles)");
        assert_eq!(
            ev.violations(),
            par_violations.as_slice(),
            "`{name}`: partitioned violation stream"
        );

        if name == "rtl_buggy" {
            buggy_violations = ev.violations().to_vec();
        } else {
            assert!(
                ev.violations().is_empty(),
                "`{name}`: clean design must not trip the checking memories"
            );
        }
    }
    // The paper's punchline: the latent ring-buffer overrun of the buggy
    // variant survives synthesis and is caught by the gate-level checking
    // memories — identically on all three engines (asserted above).
    assert!(
        !buggy_violations.is_empty(),
        "the buggy variant's overrun must be visible at gate level"
    );
}

#[test]
fn gate_level_validation_flow_accepts_every_engine() {
    use scflow::flow::{validate_gate_level_with, GateEngine};
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(12, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let nl = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synthesizes")
        .netlist;
    for engine in [
        GateEngine::EventDriven,
        GateEngine::Fast,
        GateEngine::BitParallel,
        GateEngine::Partitioned,
    ] {
        validate_gate_level_with(engine, "RTL opt", &nl, &lib, &golden)
            .unwrap_or_else(|e| panic!("{engine} engine failed validation: {e}"));
    }
}
