//! Coverage-driven tests: the fig8 stimulus must exercise the optimised
//! RTL SRC nearly completely (≥ 90% toggle coverage), the buggy variant
//! must leave a measurable coverage footprint at gate level, the toggle
//! maps must be byte-identical across all five engines on pinned seeds,
//! and a metrics snapshot must render byte-deterministically.

use scflow::models::harness::run_handshake;
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_gate::{CellLibrary, FastGateSim, GateProgram, GateSim};
use scflow_hwtypes::Bv;
use scflow_rtl::{CompiledProgram, RtlSim};
use scflow_sim_api::Simulation;
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Rng;

/// Drives one engine through the handshake testbench with toggle
/// coverage enabled (scan tied off), asserts bit accuracy, and returns
/// the coverage map plus its bit-coverage percentage.
fn covered_run(sim: &mut dyn Simulation, golden: &GoldenVectors) -> (String, f64, u64) {
    for port in ["scan_en", "scan_in", "test_mode"] {
        if sim.has_input(port) {
            sim.poke(port, Bv::zero(1));
        }
    }
    assert!(sim.set_coverage(true), "engine must support coverage");
    let budget = scflow::flow::cycle_budget(golden.len());
    let (out, _) = run_handshake(sim, &golden.input, golden.len(), budget);
    assert_eq!(out, golden.output, "engine diverged from golden");
    let cov = sim.coverage().expect("coverage enabled");
    (cov.report(), cov.percent(), cov.total_flips())
}

#[test]
fn fig8_stimulus_reaches_90pct_rtl_toggle_coverage() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let mut sim = RtlSim::new(&module);
    let (_, percent, flips) = covered_run(&mut sim, &golden);
    assert!(
        percent >= 90.0,
        "fig8 stimulus covers only {percent:.1}% of RTL net bits"
    );
    assert!(flips > 0);
}

#[test]
fn buggy_variant_leaves_gate_level_coverage_delta() {
    // The buggy variant's ring-buffer overrun never corrupts an output,
    // so both netlists pass the golden check — but the buggy one
    // synthesises to different cells with different activity, which the
    // toggle map records.
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);

    let mut runs = Vec::new();
    for variant in [RtlVariant::Optimised, RtlVariant::OptimisedBuggy] {
        let module = build_rtl_src(&cfg, variant).expect("rtl builds");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synth")
            .netlist;
        let mut sim = FastGateSim::new(&netlist).expect("levelizes");
        runs.push(covered_run(&mut sim, &golden));
    }
    let (good_map, _, good_flips) = &runs[0];
    let (buggy_map, _, buggy_flips) = &runs[1];
    assert_ne!(
        good_map, buggy_map,
        "the buggy variant must leave a different gate-level toggle map"
    );
    assert_ne!(
        good_flips, buggy_flips,
        "the buggy variant must change total gate-level toggle activity"
    );
}

#[test]
fn toggle_maps_identical_across_all_five_engines_on_pinned_seed() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let input = Rng::new(0x0B5E_2004).i16_vec(120);
    let golden = GoldenVectors::generate(&cfg, input);
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");

    let mut interp = RtlSim::new(&module);
    let (rtl_map, ..) = covered_run(&mut interp, &golden);
    let prog = CompiledProgram::compile(&module).expect("rtl compiles");
    let mut compiled = prog.simulator();
    let (compiled_map, ..) = covered_run(&mut compiled, &golden);
    assert_eq!(
        rtl_map, compiled_map,
        "interpreted and compiled RTL toggle maps must be byte-identical"
    );

    let netlist = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;
    let mut event = GateSim::new(&netlist, &lib);
    let (event_map, ..) = covered_run(&mut event, &golden);
    let mut fast = FastGateSim::new(&netlist).expect("levelizes");
    let (fast_map, ..) = covered_run(&mut fast, &golden);
    let gprog = GateProgram::compile(&netlist).expect("compiles");
    let mut bitpar = gprog.simulator();
    let (bitpar_map, ..) = covered_run(&mut bitpar, &golden);
    assert_eq!(
        event_map, fast_map,
        "event-driven and fast gate toggle maps must be byte-identical"
    );
    assert_eq!(
        event_map, bitpar_map,
        "event-driven and bit-parallel gate toggle maps must be byte-identical"
    );
}

#[test]
fn metrics_snapshot_renders_byte_deterministically() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(80, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");

    let mut snapshots = Vec::new();
    for _ in 0..2 {
        let prog = CompiledProgram::compile(&module).expect("compiles");
        let mut sim = prog.simulator();
        covered_run(&mut sim, &golden);
        let reg = Simulation::metrics(&sim).expect("compiled engine has metrics");
        snapshots.push((scflow_obs::render_metrics_json(&reg, None), reg));
    }
    scflow_testkit::assert_names_stable(&snapshots[0].1, &snapshots[1].1);
    assert_eq!(
        snapshots[0].0, snapshots[1].0,
        "two identical runs must render byte-identical METRICS.json"
    );
}
