//! Snapshot/fork checkpointing, end to end: every snapshot-capable
//! engine must replay a restored run **byte-identically** — outputs,
//! violation streams, coverage maps, VCD waveforms and rendered
//! METRICS.json all match the straight-through run — and the
//! `run_forked_scenarios` flow helper must make a warmed-up fork
//! indistinguishable from a fresh simulator that was warmed up and
//! given only that scenario.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::prelude::{run_forked_scenarios, SweepError};
use scflow::{stimulus, SrcConfig};
use scflow_gate::{CellLibrary, GateProgram};
use scflow_hwtypes::Bv;
use scflow_rtl::{CompiledProgram, Module, RtlSim};
use scflow_sim_api::{Simulation, StimulusBatch, StimulusItem};
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Rng;

/// The SRC handshake input ports every engine in this suite drives.
const DRIVE_PORTS: [(&str, u32); 3] = [
    ("in_sample", 16),
    ("in_sample_valid", 1),
    ("out_sample_ready", 1),
];

/// Ties off the scan chain if the netlist has one (gate-level sims).
fn tie_off(sim: &mut (impl Simulation + ?Sized)) {
    for port in ["scan_en", "scan_in", "test_mode"] {
        if sim.has_input(port) {
            sim.poke(port, Bv::zero(1));
        }
    }
}

/// Drives `items` deterministic stimulus items (three input pokes, two
/// cycles each) from `rng`.
fn drive(sim: &mut (impl Simulation + ?Sized), rng: &mut Rng, items: usize) {
    for _ in 0..items {
        for (port, width) in DRIVE_PORTS {
            let v = rng.next_u64() & ((1 << width) - 1);
            sim.poke(port, Bv::new(v, width));
        }
        sim.run_cycles(2);
    }
}

/// Everything deterministic a session can hand back. `Eq` on the whole
/// struct is the byte-identity check.
#[derive(Debug, PartialEq, Eq)]
struct Artifacts {
    outputs: Vec<(String, Bv)>,
    cycle: u64,
    violations: String,
    coverage: String,
    vcd: Option<String>,
    metrics: String,
}

fn collect(sim: &(impl Simulation + ?Sized), violations: &str) -> Artifacts {
    let outputs = ["out_sample", "out_sample_valid", "dbg_state"]
        .iter()
        .filter_map(|p| sim.try_peek(p).ok().map(|v| ((*p).to_owned(), v)))
        .collect();
    Artifacts {
        outputs,
        cycle: sim.cycle(),
        violations: violations.to_owned(),
        coverage: sim.coverage().expect("coverage enabled").report(),
        vcd: sim.trace(10_000),
        metrics: scflow_obs::render_metrics_json(&sim.metrics().expect("metrics"), None),
    }
}

/// The round-trip property on one engine: warm up, snapshot, run a
/// tail, restore, rerun the tail — both tails must leave identical
/// artifacts, and restore must rewind the cycle counter.
fn roundtrip<S: Simulation>(name: &str, sim: &mut S, violations: impl Fn(&S) -> String) {
    assert!(sim.set_coverage(true), "{name}: coverage");
    sim.watch("out_sample");
    sim.watch("dbg_state");
    tie_off(sim);

    drive(sim, &mut Rng::new(0x5AFE_2026), 20);
    let snap = sim.snapshot().unwrap_or_else(|| panic!("{name}: snapshot"));
    let at = sim.cycle();

    drive(sim, &mut Rng::new(0xF0_44CD), 15);
    let straight = collect(sim, &violations(sim));

    assert!(sim.restore(&snap), "{name}: own snapshot restores");
    assert_eq!(sim.cycle(), at, "{name}: restore rewinds the cycle counter");
    drive(sim, &mut Rng::new(0xF0_44CD), 15);
    let replayed = collect(sim, &violations(sim));

    assert_eq!(straight, replayed, "{name}: replay is byte-identical");
    assert!(
        straight.vcd.is_none() || straight.vcd.as_deref().unwrap_or("").contains("$enddefinitions"),
        "{name}: VCD rendered"
    );
}

#[test]
fn snapshot_roundtrip_is_byte_identical_on_every_capable_engine() {
    // The buggy RTL variant with address checking on, so the violation
    // stream is a live artifact rather than trivially empty.
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy");
    let program = CompiledProgram::compile(&module).expect("compiles");

    let mut sim = program.simulator();
    sim.check_addresses = true;
    roundtrip("rtl.compiled", &mut sim, |s| format!("{:?}", s.violations()));

    let mut sim = program.bit_simulator();
    sim.check_addresses = true;
    roundtrip("rtl.bitpar", &mut sim, |s| format!("{:?}", s.violations()));

    let opt = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let lib = CellLibrary::generic_025u();
    let nl = synthesize(&opt, &lib, &SynthOptions::default())
        .expect("synthesizes")
        .netlist;
    let prog = GateProgram::compile(&nl).expect("compiles");
    let mut sim = prog.simulator_lanes(8);
    roundtrip("gate.bitpar", &mut sim, |s| format!("{:?}", s.violations()));
}

#[test]
fn foreign_snapshots_are_refused_without_corrupting_state() {
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let program = CompiledProgram::compile(&module).expect("compiles");

    let mut compiled = program.simulator();
    let mut bit = program.bit_simulator();
    drive(&mut compiled, &mut Rng::new(0xABAD_1DEA), 5);
    drive(&mut bit, &mut Rng::new(0xABAD_1DEA), 5);
    let before = compiled.cycle();

    // Same program, same state layout — but a different engine tag, so
    // the blob must be refused and the session left untouched.
    let foreign = Simulation::snapshot(&bit).expect("bit snapshot");
    assert!(!compiled.restore(&foreign), "cross-engine blob refused");
    assert_eq!(compiled.cycle(), before, "refused restore is a no-op");

    // A design with a different identity is refused even engine-to-engine.
    let other = build_rtl_src(&SrcConfig::dvd_to_cd(), RtlVariant::Optimised).expect("other rtl");
    let other_prog = CompiledProgram::compile(&other).expect("compiles");
    let stale = Simulation::snapshot(&other_prog.simulator()).expect("snapshot");
    assert!(!compiled.restore(&stale), "cross-design blob refused");

    // Truncated bytes never panic, only refuse.
    let own = Simulation::snapshot(&compiled).expect("snapshot");
    for cut in [0, 1, own.blob().len() / 2, own.blob().len() - 1] {
        let trunc = scflow_sim_api::Snapshot::from_blob(own.blob()[..cut].to_vec());
        assert!(!compiled.restore(&trunc), "truncated at {cut} refused");
    }
    assert!(compiled.restore(&own), "own blob still restores after refusals");
}

/// Builds `n` single-item scenarios, each poking a distinct
/// `in_sample` value and running the same cycle count.
fn scenarios(n: u64, cycles: u64) -> Vec<StimulusBatch> {
    (0..n)
        .map(|i| StimulusBatch {
            items: vec![StimulusItem {
                pokes: vec![
                    ("in_sample".to_owned(), Bv::new((i * 0x0421) & 0xffff, 16)),
                    ("in_sample_valid".to_owned(), Bv::bit(true)),
                    ("out_sample_ready".to_owned(), Bv::bit(true)),
                ],
                cycles,
            }],
            read: vec!["out_sample".to_owned(), "dbg_state".to_owned()],
        })
        .collect()
}

fn warm(sim: &mut (impl Simulation + ?Sized)) {
    tie_off(sim);
    let mut rng = Rng::new(0x0051_CE00);
    drive(sim, &mut rng, 10);
}

#[test]
fn forked_scenarios_match_fresh_runs_per_scenario() {
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let program = CompiledProgram::compile(&module).expect("compiles");
    let batches = scenarios(6, 4);

    // Fork helper: warm up once, snapshot, restore per scenario.
    let mut sim = program.simulator();
    let forked = run_forked_scenarios(&mut sim, warm, &batches, false).expect("fork sweep");
    assert_eq!(forked.len(), batches.len());

    // Reference: a fresh simulator warmed up and given one scenario.
    for (i, batch) in batches.iter().enumerate() {
        let mut fresh = program.simulator();
        warm(&mut fresh);
        let reply = fresh.step_batch(batch).expect("fresh batch");
        assert_eq!(forked[i], reply, "scenario {i}: fork == fresh warmed run");
    }

    // Lanes mode on the bit-parallel engine forks per *item*: one
    // 6-item lane batch equals the six sequential fork replies.
    let mut bit = program.bit_simulator();
    let lane_batch = StimulusBatch {
        items: batches
            .iter()
            .flat_map(|b| b.items.iter().cloned())
            .collect(),
        read: batches[0].read.clone(),
    };
    let lanes =
        run_forked_scenarios(&mut bit, warm, std::slice::from_ref(&lane_batch), true)
            .expect("lane sweep");
    let flat: Vec<_> = forked.iter().flat_map(|r| r.outputs.iter()).collect();
    let lane_flat: Vec<_> = lanes[0].outputs.iter().collect();
    assert_eq!(flat, lane_flat, "lane fork outputs == sequential fork outputs");
}

#[test]
fn fork_helper_reports_unsupported_engines() {
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt");
    let mut interp = RtlSim::new(&module);
    let err = run_forked_scenarios(&mut interp, warm, &scenarios(2, 3), false)
        .expect_err("interpreter cannot snapshot");
    assert!(matches!(err, SweepError::SnapshotUnsupported), "{err}");
}

/// Lane-0 of the bit-parallel RTL engine against the compiled scalar
/// engine on **every SRC RTL variant** — full handshake testbench,
/// identical outputs, cycles and violation streams (the buggy variant
/// with address checking enabled on both).
#[test]
fn bit_engine_lane0_matches_compiled_on_every_rtl_variant() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(80, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = scflow::verify::GoldenVectors::generate(&cfg, input);
    let budget = scflow::flow::cycle_budget(golden.len());

    for (variant, check) in [
        (RtlVariant::Unoptimised, false),
        (RtlVariant::Optimised, false),
        (RtlVariant::OptimisedBuggy, true),
    ] {
        let module: Module = build_rtl_src(&cfg, variant).expect("builds");
        let program = CompiledProgram::compile(&module).expect("compiles");
        let mut scalar = program.simulator();
        let mut bit = program.bit_simulator();
        scalar.check_addresses = check;
        bit.check_addresses = check;
        let scalar_run =
            scflow::models::harness::run_handshake(&mut scalar, &golden.input, golden.len(), budget);
        let bit_run =
            scflow::models::harness::run_handshake(&mut bit, &golden.input, golden.len(), budget);
        assert_eq!(
            scalar_run, bit_run,
            "{variant:?}: lane-0 (outputs, cycles) match the compiled engine"
        );
        assert_eq!(scalar_run.0, golden.output, "{variant:?}: golden outputs");
        assert_eq!(
            scalar.violations(),
            bit.violations(),
            "{variant:?}: identical violation streams"
        );
        if check {
            assert!(!bit.violations().is_empty(), "buggy variant caught");
        }
    }
}
