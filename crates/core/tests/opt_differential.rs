//! Pass-pipeline differential over the flow's own designs: every SRC
//! variant (behavioural unopt/opt, hand RTL unopt/opt/buggy, VHDL
//! reference) compiled with the passes off (`opt0`) and fully on
//! (`opt2`) must be indistinguishable on both RTL bytecode engines —
//! per-tick output streams on every output port, memory-violation
//! streams and rendered VCD text, byte for byte. The buggy variant is
//! in the matrix on purpose: the passes must preserve *wrong* behaviour
//! just as faithfully as right behaviour, or the refinement flow's bug
//! hunt would be chasing optimizer artefacts.
//!
//! A second test replays the real handshake/fixed testbench protocol at
//! both levels against the golden vectors, so protocol-level timing
//! (ready/valid stalls, consume schedule) is pinned too.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::harness::{run_fixed, run_handshake};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_hwtypes::{Bv, PassConfig};
use scflow_rtl::{BitRtlSim, CompiledProgram, CompiledSim, Module, PortDir};
use scflow_testkit::{first_divergence, Rng};

/// The five SRC variants plus the injected-bug one; `fixed` marks the
/// strobed testbench protocol (as in `engine_differential`).
fn variants(cfg: &SrcConfig) -> Vec<(&'static str, Module, bool)> {
    vec![
        (
            "beh_unopt",
            synthesize_beh_src(cfg, BehVariant::Unoptimised)
                .expect("beh unopt")
                .module,
            false,
        ),
        (
            "beh_opt",
            synthesize_beh_src(cfg, BehVariant::Optimised)
                .expect("beh opt")
                .module,
            true,
        ),
        (
            "rtl_unopt",
            build_rtl_src(cfg, RtlVariant::Unoptimised).expect("rtl unopt"),
            false,
        ),
        (
            "rtl_opt",
            build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl opt"),
            false,
        ),
        ("vhdl_ref", build_vhdl_ref(cfg).expect("vhdl ref"), false),
        (
            "rtl_buggy",
            build_rtl_src(cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy"),
            false,
        ),
    ]
}

/// Everything one engine run produces that an observer could compare.
struct RunArtifacts {
    /// Per output port, the value after every tick.
    traces: Vec<(String, Vec<Bv>)>,
    violations: Vec<String>,
    vcd: String,
}

/// Free-running stimulus: seeded noise on every input port each cycle,
/// which exercises the datapath well past what the polite handshake
/// testbench reaches (back-pressure flaps, mid-transfer data changes).
fn stimulus_for(module: &Module, cycle: u64, rng: &mut Rng) -> Vec<(String, Bv)> {
    let _ = cycle;
    module
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input)
        .map(|p| {
            let mask = if p.width >= 64 { u64::MAX } else { (1u64 << p.width) - 1 };
            (p.name.clone(), Bv::new(rng.next_u64() & mask, p.width))
        })
        .collect()
}

macro_rules! drive_engine {
    ($fn_name:ident, $sim_ty:ty) => {
        fn $fn_name(module: &Module, sim: &mut $sim_ty, cycles: u64) -> RunArtifacts {
            let out_ports: Vec<String> = module
                .ports()
                .iter()
                .filter(|p| p.dir == PortDir::Output)
                .map(|p| p.name.clone())
                .collect();
            for p in &out_ports {
                sim.watch_port(p);
            }
            let mut traces: Vec<(String, Vec<Bv>)> =
                out_ports.iter().map(|p| (p.clone(), Vec::new())).collect();
            let mut rng = Rng::new(0x5E_C0DE);
            for cycle in 0..cycles {
                for (port, val) in stimulus_for(module, cycle, &mut rng) {
                    sim.set_input(&port, val);
                }
                sim.tick();
                for (p, t) in &mut traces {
                    t.push(sim.output(p));
                }
            }
            RunArtifacts {
                violations: sim.violations().iter().map(|v| format!("{v:?}")).collect(),
                vcd: sim.waveform_vcd(1_000),
                traces,
            }
        }
    };
}
drive_engine!(drive_compiled, CompiledSim);
drive_engine!(drive_bit, BitRtlSim);

fn assert_same(name: &str, reference: &RunArtifacts, candidate: &RunArtifacts) {
    for ((port, l), (_, r)) in reference.traces.iter().zip(&candidate.traces) {
        if let Some(d) = first_divergence(port, l, r) {
            panic!("{name}: {d}");
        }
    }
    if let Some(d) = first_divergence("violations", &reference.violations, &candidate.violations) {
        panic!("{name}: {d}");
    }
    assert_eq!(reference.vcd, candidate.vcd, "{name}: VCD text differs");
}

/// 400 cycles of identical noise on {compiled, bit-parallel} × {opt0,
/// opt2}: all four runs must be byte-identical per variant.
#[test]
fn passes_preserve_every_src_variant_on_both_engines() {
    let cfg = SrcConfig::cd_to_dvd();
    let cycles = 400;
    for (name, module, _) in variants(&cfg) {
        let p0 = CompiledProgram::compile_with(&module, &PassConfig::off()).expect("opt0 compiles");
        let p2 =
            CompiledProgram::compile_with(&module, &PassConfig::for_level(2)).expect("opt2 compiles");
        assert!(
            p2.instruction_count() <= p0.instruction_count(),
            "`{name}`: passes must never grow the program \
             ({} -> {} instructions)",
            p0.instruction_count(),
            p2.instruction_count(),
        );

        let reference = drive_compiled(&module, &mut p0.simulator(), cycles);
        assert_same(
            &format!("{name}: compiled opt2 vs opt0"),
            &reference,
            &drive_compiled(&module, &mut p2.simulator(), cycles),
        );
        assert_same(
            &format!("{name}: bitpar opt0 vs compiled opt0"),
            &reference,
            &drive_bit(&module, &mut p0.bit_simulator(), cycles),
        );
        assert_same(
            &format!("{name}: bitpar opt2 vs compiled opt0"),
            &reference,
            &drive_bit(&module, &mut p2.bit_simulator(), cycles),
        );
    }
}

/// The real testbench protocol at both pass levels: same (outputs,
/// cycles) stream, and — for the non-buggy variants — golden-accurate.
#[test]
fn testbench_protocol_is_level_invariant() {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::noise(240, 16_000, 0xD1FF_5EED);
    let golden = GoldenVectors::generate(&cfg, input);
    let expected = golden.output.len();
    let budget = scflow::flow::cycle_budget(expected);

    for (name, module, fixed) in variants(&cfg) {
        let p0 = CompiledProgram::compile_with(&module, &PassConfig::off()).expect("opt0 compiles");
        let p2 =
            CompiledProgram::compile_with(&module, &PassConfig::for_level(2)).expect("opt2 compiles");
        let mut s0 = p0.simulator();
        let mut s2 = p2.simulator();
        let (r0, r2) = if fixed {
            (
                run_fixed(&mut s0, &golden.input, expected, budget),
                run_fixed(&mut s2, &golden.input, expected, budget),
            )
        } else {
            (
                run_handshake(&mut s0, &golden.input, expected, budget),
                run_handshake(&mut s2, &golden.input, expected, budget),
            )
        };
        assert_eq!(
            r0, r2,
            "`{name}`: pass level changed the (outputs, cycles) stream"
        );
        if name != "rtl_buggy" {
            assert_eq!(r2.0, golden.output, "`{name}`: optimized run left the golden rail");
        }
    }
}
