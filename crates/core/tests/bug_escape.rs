//! The paper's bug-escape experiment as a regression test: the injected
//! golden-model ring-buffer bug survives every functional simulation
//! bit-accurately and is caught **only** by the gate-level checking
//! memory model.

use scflow::algo::AlgoSrc;
use scflow::models::harness::run_handshake;
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::verify::{compare_bit_accurate, GoldenVectors};
use scflow::{stimulus, SrcConfig};
use scflow_gate::{CellLibrary, GateSim};
use scflow_rtl::RtlSim;
use scflow_synth::rtl::{synthesize, SynthOptions};

fn setup() -> (SrcConfig, GoldenVectors) {
    // Downsampling reaches the two-consume corner the bug needs.
    let cfg = SrcConfig::dvd_to_cd();
    let input = stimulus::noise(300, 8_000, 7);
    let golden = GoldenVectors::generate(&cfg, input);
    (cfg, golden)
}

#[test]
fn buggy_algorithm_is_functionally_invisible() {
    let (cfg, golden) = setup();
    let mut buggy = AlgoSrc::new(&cfg).with_buffer_bug();
    let out = buggy.process(&golden.input);
    compare_bit_accurate(&golden.output, &out).expect("bit accurate");
    assert!(
        buggy
            .raw_indices_seen()
            .iter()
            .any(|&i| i >= SrcConfig::BUFFER as u32),
        "bug must issue invalid raw indices"
    );
}

#[test]
fn buggy_rtl_passes_interpreted_simulation() {
    let (cfg, golden) = setup();
    let m = build_rtl_src(&cfg, RtlVariant::OptimisedBuggy).expect("build");
    let mut sim = RtlSim::new(&m);
    let (out, _) = run_handshake(
        &mut sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    compare_bit_accurate(&golden.output, &out).expect("bit accurate at RTL");
    // Plain HDL simulation has no address checks: nothing recorded.
    assert!(sim.violations().is_empty());
}

#[test]
fn gate_level_checking_memory_catches_the_bug() {
    let (cfg, golden) = setup();
    let lib = CellLibrary::generic_025u();
    let m = build_rtl_src(&cfg, RtlVariant::OptimisedBuggy).expect("build");
    let netlist = synthesize(&m, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;
    let mut sim = GateSim::new(&netlist, &lib);
    let (out, _) = run_handshake(
        &mut sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    // Data still bit-accurate (the invalid address wraps onto the right
    // cell in simulation — that is exactly why the bug escaped)...
    compare_bit_accurate(&golden.output, &out).expect("bit accurate at gate level");
    // ...but the generated memory model flags the accesses.
    let v = sim.violations();
    assert!(!v.is_empty(), "checking model must fire");
    assert!(v.iter().all(|x| x.memory == "in_buf"));
    assert!(v.iter().all(|x| x.address >= SrcConfig::BUFFER as u64));
    assert!(v.iter().all(|x| !x.write), "it is a read-path bug");
}

#[test]
fn clean_design_reports_no_violations() {
    let (cfg, golden) = setup();
    let lib = CellLibrary::generic_025u();
    let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
    let netlist = synthesize(&m, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;
    let mut sim = GateSim::new(&netlist, &lib);
    let (out, _) = run_handshake(
        &mut sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    compare_bit_accurate(&golden.output, &out).expect("bit accurate");
    assert!(sim.violations().is_empty());
}
