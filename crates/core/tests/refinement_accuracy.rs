//! Cross-crate refinement accuracy: the golden vectors drive every level
//! of the flow including the gate level and the co-simulation harnesses —
//! the full "refine and re-validate" discipline in one test file.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::harness::run_handshake;
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::verify::{compare_bit_accurate, GoldenVectors};
use scflow::{stimulus, SrcConfig};
use scflow_cosim::{run_kernel_cosim, run_native_hdl};
use scflow_gate::{CellLibrary, GateSim};
use scflow_rtl::RtlSim;
use scflow_synth::rtl::{synthesize, SynthOptions};

fn golden_up() -> (SrcConfig, GoldenVectors) {
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(80, 1000.0, 44_100.0, 9_000.0);
    let g = GoldenVectors::generate(&cfg, input);
    (cfg, g)
}

#[test]
fn gate_level_rtl_flow_is_bit_accurate() {
    let (cfg, g) = golden_up();
    let lib = CellLibrary::generic_025u();
    for variant in [RtlVariant::Unoptimised, RtlVariant::Optimised] {
        let m = build_rtl_src(&cfg, variant).expect("build");
        let netlist = synthesize(&m, &lib, &SynthOptions::default())
            .expect("synth")
            .netlist;
        let mut sim = GateSim::new(&netlist, &lib);
        let (out, _) = run_handshake(
            &mut sim,
            &g.input,
            g.len(),
            scflow::flow::cycle_budget(g.len()),
        );
        compare_bit_accurate(&g.output, &out)
            .unwrap_or_else(|m| panic!("{variant:?} gate level: {m}"));
        assert!(sim.violations().is_empty(), "{variant:?}: clean design");
    }
}

#[test]
fn gate_level_behavioural_flow_is_bit_accurate() {
    let (cfg, g) = golden_up();
    let lib = CellLibrary::generic_025u();
    let m = synthesize_beh_src(&cfg, BehVariant::Unoptimised)
        .expect("beh")
        .module;
    let netlist = synthesize(&m, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;
    let mut sim = GateSim::new(&netlist, &lib);
    // Behavioural schedules take more cycles per output.
    let (out, _) = run_handshake(&mut sim, &g.input, g.len(), 2_000_000);
    compare_bit_accurate(&g.output, &out).expect("gate-level behavioural flow");
}

#[test]
fn cosim_configurations_agree_with_each_other() {
    let (cfg, g) = golden_up();
    let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
    let native = run_native_hdl(&mut RtlSim::new(&m), &g, 1_000_000);
    let cosim = run_kernel_cosim(&mut RtlSim::new(&m), &g, 1_000_000);
    assert_eq!(native.outputs, cosim.outputs);
    compare_bit_accurate(&g.output, &native.outputs).expect("native");
    assert_eq!(native.testbench_errors, 0);
}

#[test]
fn golden_vectors_are_deterministic_across_configs() {
    for cfg in [
        SrcConfig::cd_to_dvd(),
        SrcConfig::dvd_to_cd(),
        SrcConfig::broadcast_to_dvd(),
    ] {
        let input = stimulus::sweep(120, 50.0, 12_000.0, f64::from(cfg.in_rate), 8_000.0);
        let a = GoldenVectors::generate(&cfg, input.clone());
        let b = GoldenVectors::generate(&cfg, input);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}

#[test]
fn broadcast_rate_pair_validates_through_the_synthesisable_flow() {
    let cfg = SrcConfig::broadcast_to_dvd();
    let input = stimulus::sine(100, 440.0, 32_000.0, 9_000.0);
    scflow::flow::validate_all_levels(&cfg, &input).expect("32k->48k flow");
}

#[test]
fn figure10_shape_is_library_independent() {
    // The paper normalises to the VHDL reference; the relative ordering
    // must not depend on the technology library.
    let cfg = SrcConfig::cd_to_dvd();
    let for_lib = |lib: &CellLibrary| {
        scflow::flow::run_area_flow(&cfg, lib)
            .expect("flow")
            .rows
            .into_iter()
            .map(|r| (r.design, r.relative_pct))
            .collect::<Vec<_>>()
    };
    let a = for_lib(&CellLibrary::generic_025u());
    let b = for_lib(&CellLibrary::generic_018u());
    for ((name_a, pct_a), (name_b, pct_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert!(
            (pct_a - pct_b).abs() < 0.01,
            "{name_a}: {pct_a:.2}% vs {pct_b:.2}% across libraries"
        );
    }
}

#[test]
fn differential_rtl_vs_gate_on_seeded_noise() {
    // Differential run across the synthesis boundary: interpreted RTL vs
    // the synthesised gate netlist, on random (seeded) stimuli rather than
    // the sine the figures use. A failure names the first diverging sample.
    use scflow_testkit::diff::first_divergence;
    use scflow_testkit::Rng;

    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
    let netlist = synthesize(&m, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let mut seeds = Rng::new(0xD1FF_0002);
    for _ in 0..2 {
        let seed = seeds.next_u64();
        let g = GoldenVectors::generate(&cfg, stimulus::noise(100, 9_000, seed));
        let budget = scflow::flow::cycle_budget(g.len());
        let (rtl_out, _) = run_handshake(&mut RtlSim::new(&m), &g.input, g.len(), budget);
        let (gate_out, _) = run_handshake(&mut GateSim::new(&netlist, &lib), &g.input, g.len(), budget);
        if let Some(d) = first_divergence("dut.out", &rtl_out, &gate_out) {
            panic!("stimulus seed {seed:#x}: {d}");
        }
        compare_bit_accurate(&g.output, &rtl_out)
            .unwrap_or_else(|m| panic!("stimulus seed {seed:#x}: {m}"));
    }
}

#[test]
fn differential_cosim_testbenches_on_seeded_noise() {
    // The two Figure 9 testbench configurations must agree sample-for-
    // sample on random stimuli, with divergences time-stamped on the
    // 40 ns clock grid.
    use scflow_testkit::diff::first_divergence_timed;
    use scflow_testkit::Rng;

    let cfg = SrcConfig::cd_to_dvd();
    let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
    let mut seeds = Rng::new(0xD1FF_0003);
    let seed = seeds.next_u64();
    let g = GoldenVectors::generate(&cfg, stimulus::noise(60, 9_000, seed));

    let native = run_native_hdl(&mut RtlSim::new(&m), &g, 1_000_000);
    let cosim = run_kernel_cosim(&mut RtlSim::new(&m), &g, 1_000_000);
    let times: Vec<u64> = (0..native.outputs.len() as u64).map(|i| i * 40_000).collect();
    if let Some(d) = first_divergence_timed("tb.out", &native.outputs, &cosim.outputs, &times) {
        panic!("stimulus seed {seed:#x}: {d}");
    }
    assert_eq!(native.testbench_errors, 0);
    compare_bit_accurate(&g.output, &native.outputs)
        .unwrap_or_else(|m| panic!("stimulus seed {seed:#x}: {m}"));
}
