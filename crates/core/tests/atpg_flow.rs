//! Flow-level ATPG regressions on the synthesized SRC: fault collapsing
//! must not change the detected set, and `run_atpg_flow` must be
//! bit-identical regardless of PPSFP thread count or partitioning.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::SrcConfig;
use scflow_gate::fault::{all_fault_sites, collapse_faults, fault_coverage};
use scflow_gate::{generate_tests, AtpgOptions, CellLibrary};
use scflow_synth::rtl::{synthesize, SynthOptions};

/// A reduced budget keeps the runs to a couple of seconds each; the
/// properties under test do not depend on closing full coverage.
fn quick_opts() -> AtpgOptions {
    AtpgOptions {
        random_max: 8,
        budget: 16,
        ..AtpgOptions::default()
    }
}

/// Equivalence-class collapsing is an optimisation, not an
/// approximation: simulating the emitted patterns against the collapsed
/// representatives and expanding via the class map must give exactly
/// the detected set of simulating the full uncollapsed fault list.
#[test]
fn collapsed_and_uncollapsed_detected_sets_agree_on_src() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let nl = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let all = all_fault_sites(&nl);
    let collapsed = collapse_faults(&nl, &all);
    assert!(collapsed.faults.len() < all.len(), "collapsing had no effect");

    let r = generate_tests(&nl, &lib, &collapsed.faults, &quick_opts());
    assert!(!r.patterns.is_empty());

    let rep = fault_coverage(&nl, &lib, &collapsed.faults, &r.patterns);
    let expanded = collapsed.expand_mask(&rep.detected_mask);
    let full = fault_coverage(&nl, &lib, &all, &r.patterns);
    assert_eq!(
        expanded, full.detected_mask,
        "collapsed-then-expanded detected set diverges from the uncollapsed run"
    );
}

/// `run_atpg_flow` output — patterns, per-fault classes, and the
/// coverage curve — must not depend on how the PPSFP stages are
/// scheduled. Env knobs are varied sequentially inside one test to
/// avoid races with the process-wide environment.
#[test]
fn atpg_flow_deterministic_across_thread_counts() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let opts = quick_opts();

    let configs: [(&str, Option<&str>); 6] = [
        ("1", None),
        ("2", None),
        ("4", None),
        ("8", None),
        ("2", Some("1")),
        ("4", Some("1")),
    ];
    let mut reference = None;
    for (threads, part) in configs {
        std::env::set_var("SCFLOW_FAULT_THREADS", threads);
        match part {
            Some(v) => std::env::set_var("SCFLOW_FAULT_PARTITIONED", v),
            None => std::env::remove_var("SCFLOW_FAULT_PARTITIONED"),
        }
        let (report, result) = scflow::flow::run_atpg_flow(&cfg, &lib, &opts).expect("flow");
        let key = (result.patterns, result.classes, result.stats.curve);
        match &reference {
            None => reference = Some((key, report.coverage_pct)),
            Some(((pats, classes, curve), ref_cov)) => {
                let div = scflow_testkit::first_divergence("patterns", pats, &key.0)
                    .or_else(|| scflow_testkit::first_divergence("classes", classes, &key.1))
                    .or_else(|| scflow_testkit::first_divergence("curve", curve, &key.2));
                assert!(
                    div.is_none(),
                    "ATPG output diverged at SCFLOW_FAULT_THREADS={threads} \
                     SCFLOW_FAULT_PARTITIONED={part:?}: {}",
                    div.unwrap()
                );
                assert_eq!(ref_cov, &report.coverage_pct);
            }
        }
    }
    std::env::remove_var("SCFLOW_FAULT_THREADS");
    std::env::remove_var("SCFLOW_FAULT_PARTITIONED");
}
