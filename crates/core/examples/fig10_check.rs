fn main() {
    let cfg = scflow::SrcConfig::cd_to_dvd();
    let lib = scflow_gate::CellLibrary::generic_025u();
    let fig = scflow::flow::run_area_flow(&cfg, &lib).expect("flow");
    println!("{fig}");
}
