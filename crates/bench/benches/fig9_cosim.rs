//! Figure 9 bench: native HDL simulation (interpreted testbench) vs
//! SystemC-testbench co-simulation, on the three HDL artefacts. Runs on
//! the in-repo `scflow-testkit` harness and emits `BENCH_fig9.json`.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_cosim::{run_kernel_cosim, run_native_hdl, run_native_hdl_compiled};
use scflow_gate::{CellLibrary, FastGateSim, GateProgram, GateSim, ParGateSim};
use scflow_rtl::{CompiledProgram, RtlSim};
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Harness;

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(30, 1000.0, 44_100.0, 9000.0);
    let golden = GoldenVectors::generate(&cfg, input);

    let rtl_module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let gate_rtl = synthesize(&rtl_module, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let mut h = Harness::new("fig9_cosim");
    h.bench_cycles("rtl_dut_vhdl_tb", || {
        let mut dut = RtlSim::new(&rtl_module);
        std::hint::black_box(run_native_hdl(&mut dut, &golden, 1_000_000)).cycles
    });
    h.bench_cycles("rtl_dut_systemc_tb", || {
        let mut dut = RtlSim::new(&rtl_module);
        std::hint::black_box(run_kernel_cosim(&mut dut, &golden, 1_000_000)).cycles
    });
    // Gate simulators are constructed once and reset per iteration:
    // constructing inside the timed closure folded netlist setup into
    // every measurement.
    let mut gate_dut = GateSim::new(&gate_rtl, &lib);
    h.bench_cycles("gate_rtl_dut_vhdl_tb", || {
        gate_dut.reset();
        std::hint::black_box(run_native_hdl(&mut gate_dut, &golden, 1_000_000)).cycles
    });
    let mut gate_dut = GateSim::new(&gate_rtl, &lib);
    h.bench_cycles("gate_rtl_dut_systemc_tb", || {
        gate_dut.reset();
        std::hint::black_box(run_kernel_cosim(&mut gate_dut, &golden, 1_000_000)).cycles
    });
    // The RTL DUT on the compiled levelized engine, appended after the
    // paper's rows (their ordering is the figure). The native-HDL row
    // compiles the testbench too: the all-compiled configuration.
    let rtl_program = CompiledProgram::compile(&rtl_module).expect("rtl compiles");
    h.bench_cycles("rtl_compiled_dut_vhdl_tb", || {
        let mut dut = rtl_program.simulator();
        std::hint::black_box(run_native_hdl_compiled(&mut dut, &golden, 1_000_000)).cycles
    });
    h.bench_cycles("rtl_compiled_dut_systemc_tb", || {
        let mut dut = rtl_program.simulator();
        std::hint::black_box(run_kernel_cosim(&mut dut, &golden, 1_000_000)).cycles
    });
    // The same gate netlist on the accelerated engines, appended after
    // the paper's rows: levelized fast mode, then the compiled
    // bit-parallel engine in single-pattern mode.
    let mut fast_dut = FastGateSim::new(&gate_rtl).expect("gate netlist levelizes");
    h.bench_cycles("gate_fast_dut_vhdl_tb", || {
        fast_dut.reset();
        std::hint::black_box(run_native_hdl(&mut fast_dut, &golden, 1_000_000)).cycles
    });
    let mut fast_dut = FastGateSim::new(&gate_rtl).expect("gate netlist levelizes");
    h.bench_cycles("gate_fast_dut_systemc_tb", || {
        fast_dut.reset();
        std::hint::black_box(run_kernel_cosim(&mut fast_dut, &golden, 1_000_000)).cycles
    });
    let gate_prog = GateProgram::compile(&gate_rtl).expect("gate netlist compiles");
    let mut bitpar_dut = gate_prog.simulator();
    h.bench_cycles("gate_bitpar_dut_vhdl_tb", || {
        bitpar_dut.reset();
        std::hint::black_box(run_native_hdl(&mut bitpar_dut, &golden, 1_000_000)).cycles
    });
    let mut bitpar_dut = gate_prog.simulator();
    h.bench_cycles("gate_bitpar_dut_systemc_tb", || {
        bitpar_dut.reset();
        std::hint::black_box(run_kernel_cosim(&mut bitpar_dut, &golden, 1_000_000)).cycles
    });
    // The partitioned multi-threaded engine on the same netlist, at a
    // thread-scaling ladder; each row records its thread count in the
    // JSON so the scaling curve can be reconstructed from the artefact.
    for threads in [1u32, 2, 4, 8] {
        ParGateSim::with(&gate_prog, threads as usize, 1, |dut| {
            h.bench_cycles(&format!("gate_partitioned_t{threads}_dut_systemc_tb"), || {
                dut.reset();
                std::hint::black_box(run_kernel_cosim(dut, &golden, 1_000_000)).cycles
            });
        });
        h.set_threads(threads);
    }
    print!("{}", h.table());

    // Full figure (all six bars), printed once.
    let rows = scflow_bench::measure_fig9(&cfg, 30);
    println!("\n=== Figure 9: co-simulation vs native HDL simulation ===");
    for r in &rows {
        println!(
            "{:<11} {:<11} {:>12.0} cyc/s  ({} cycles)",
            r.dut, r.testbench, r.cycles_per_sec, r.cycles
        );
    }

    let path = scflow_bench::bench_output_path("BENCH_fig9.json");
    h.write_json(&path).expect("write BENCH_fig9.json");
    println!("\nwrote {}", path.display());
}
