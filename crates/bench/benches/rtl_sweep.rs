//! Scenario-sweep bench for the batched RTL engines: how fast can the
//! flow evaluate 64 independent stimulus scenarios against a warmed-up
//! design? Emits `BENCH_sweep.json`.
//!
//! Three strategies over the same 64 scenarios on the optimised RTL SRC:
//!
//! * `compiled_fresh`    — the naive loop: a fresh scalar `CompiledSim`
//!   per scenario, paying the shared warmup every time.
//! * `compiled_forked`   — the scalar simulator is warmed and
//!   snapshotted **once** (bench setup); each timed sweep restores the
//!   checkpoint per scenario and replays only the scenario tail.
//! * `bitpar_lanes`      — the 64-lane `BitRtlSim` is warmed and
//!   snapshotted once; each timed sweep restores and runs all 64
//!   scenarios as one `step_batch_lanes` pass.
//!
//! The forked rows measure the steady-state sweep cost the checkpoint
//! API exists to buy: a long-lived session (serve worker, regression
//! sweep) pays warmup once and replays scenarios forever after. The
//! per-scenario speedup of `bitpar_lanes` over `compiled_fresh` is the
//! tentpole number; the bench exits non-zero if it drops under the
//! floor (`SCFLOW_SWEEP_MIN`, default 8x).

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::prelude::run_forked_scenarios;
use scflow::SrcConfig;
use scflow_hwtypes::Bv;
use scflow_rtl::CompiledProgram;
use scflow_sim_api::{Simulation, StimulusBatch, StimulusItem};
use scflow_testkit::Harness;

/// Independent stimulus scenarios — one per bit-parallel lane.
const SCENARIOS: u64 = 64;
/// Clock cycles each scenario runs after the fork point.
const SCENARIO_CYCLES: u64 = 64;
/// Clock cycles of shared warmup before the fork point.
const WARMUP_CYCLES: u64 = 256;

fn scenario_item(i: u64) -> StimulusItem {
    StimulusItem {
        pokes: vec![
            ("in_sample".to_owned(), Bv::new((i * 0x0421) & 0xffff, 16)),
            ("in_sample_valid".to_owned(), Bv::bit(true)),
            ("out_sample_ready".to_owned(), Bv::bit(true)),
        ],
        cycles: SCENARIO_CYCLES,
    }
}

fn read_ports() -> Vec<String> {
    vec!["out_sample".to_owned(), "out_sample_valid".to_owned()]
}

fn warm(sim: &mut (impl Simulation + ?Sized)) {
    sim.poke("in_sample", Bv::new(0x1234, 16));
    sim.poke("in_sample_valid", Bv::bit(true));
    sim.poke("out_sample_ready", Bv::bit(true));
    sim.run_cycles(WARMUP_CYCLES);
}

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl opt builds");
    let program = CompiledProgram::compile(&module).expect("compiles");

    // Per-scenario sequential batches, and the same 64 items as one
    // lane batch.
    let seq: Vec<StimulusBatch> = (0..SCENARIOS)
        .map(|i| StimulusBatch {
            items: vec![scenario_item(i)],
            read: read_ports(),
        })
        .collect();
    let lane_batch = StimulusBatch {
        items: (0..SCENARIOS).map(scenario_item).collect(),
        read: read_ports(),
    };

    let mut h = Harness::new("rtl_sweep").with_iters(5).with_warmup(1);

    h.bench_cycles("compiled_fresh", || {
        let mut total = 0;
        for batch in &seq {
            let mut sim = program.simulator();
            warm(&mut sim);
            let reply = sim.step_batch(batch).expect("scenario runs");
            total += reply.cycles; // absolute cycle count: warmup + scenario
            std::hint::black_box(&reply.outputs);
        }
        total
    });

    // Warm + checkpoint once, outside the timed region — the forked
    // rows measure the cost of *replaying scenarios*, not of warmup.
    let mut scalar_sim = program.simulator();
    warm(&mut scalar_sim);
    let scalar_snap = scalar_sim.snapshot().expect("scalar snapshot");
    h.bench_cycles("compiled_forked", || {
        let mut total = 0;
        for batch in &seq {
            assert!(scalar_sim.restore(&scalar_snap), "restore");
            let reply = scalar_sim.step_batch(batch).expect("scenario runs");
            total += SCENARIO_CYCLES;
            std::hint::black_box(&reply.outputs);
        }
        total
    });

    let mut bit_sim = program.bit_simulator();
    warm(&mut bit_sim);
    let bit_snap = Simulation::snapshot(&bit_sim).expect("bit snapshot");
    h.bench_cycles("bitpar_lanes", || {
        assert!(bit_sim.restore(&bit_snap), "restore");
        let reply = bit_sim.step_batch_lanes(&lane_batch).expect("lane sweep runs");
        std::hint::black_box(&reply.outputs);
        SCENARIOS * SCENARIO_CYCLES
    });

    // Correctness cross-check alongside the timing: the lane sweep and
    // the forked scalar sweep must agree on every scenario's outputs.
    let mut scalar = program.simulator();
    let forked = run_forked_scenarios(&mut scalar, warm, &seq, false).expect("forked");
    let mut bit = program.bit_simulator();
    let lanes = run_forked_scenarios(&mut bit, warm, std::slice::from_ref(&lane_batch), true)
        .expect("lanes");
    let flat: Vec<_> = forked.iter().flat_map(|r| r.outputs.clone()).collect();
    assert_eq!(
        flat, lanes[0].outputs,
        "lane sweep outputs diverge from the forked scalar sweep"
    );

    let per_scenario = |median_ns: f64| median_ns / SCENARIOS as f64;
    let fresh_ns = per_scenario(h.results[0].median_ns);
    let forked_ns = per_scenario(h.results[1].median_ns);
    let lanes_ns = per_scenario(h.results[2].median_ns);
    let fork_speedup = fresh_ns / forked_ns.max(1e-12);
    let lane_speedup = fresh_ns / lanes_ns.max(1e-12);
    h.metric("scenarios", SCENARIOS as f64);
    h.metric("scenario_cycles", SCENARIO_CYCLES as f64);
    h.metric("warmup_cycles", WARMUP_CYCLES as f64);
    h.metric("per_scenario_ns", lanes_ns);
    h.metric("fork_speedup", fork_speedup);
    h.metric("lane_speedup", lane_speedup);

    print!("{}", h.table());
    println!(
        "\nper-scenario: fresh {:.1} us, forked {:.1} us ({fork_speedup:.1}x), \
         64-lane {:.1} us ({lane_speedup:.1}x)",
        fresh_ns / 1e3,
        forked_ns / 1e3,
        lanes_ns / 1e3
    );

    let path = scflow_bench::bench_output_path("BENCH_sweep.json");
    h.write_json(&path).expect("write BENCH_sweep.json");
    println!("wrote {}", path.display());

    let floor: f64 = std::env::var("SCFLOW_SWEEP_MIN")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(8.0);
    if lane_speedup < floor {
        eprintln!(
            "FAILED: 64-lane sweep is only {lane_speedup:.1}x the naive per-scenario \
             loop (floor {floor:.1}x)"
        );
        std::process::exit(1);
    }
}
