//! Figure 8 bench: simulation performance across the abstraction levels
//! (C++, SystemC channels, refined channel, behavioural, RTL), measured as
//! Criterion throughput on a fixed conversion workload.

use criterion::{criterion_group, criterion_main, Criterion};
use scflow::algo::AlgoSrc;
use scflow::models::beh::run_beh_model;
use scflow::models::channel::run_channel_model;
use scflow::models::refined::run_refined_model;
use scflow::models::rtl::run_rtl_model;
use scflow::{stimulus, SrcConfig};

fn bench_fig8(c: &mut Criterion) {
    let cfg = SrcConfig::cd_to_dvd();
    let mut group = c.benchmark_group("fig8_sim_performance");
    group.sample_size(10);

    // Workload sizes chosen so each iteration is meaningful but short; the
    // normalised cycles/s figures come from the `tables` binary.
    let big = stimulus::sine(44_100, 1000.0, 44_100.0, 9000.0);
    group.bench_function("cpp_algorithmic", |b| {
        b.iter(|| {
            let mut src = AlgoSrc::new(&cfg);
            std::hint::black_box(src.process(&big));
        })
    });

    let medium = stimulus::sine(1_000, 1000.0, 44_100.0, 9000.0);
    group.bench_function("systemc_channel", |b| {
        b.iter(|| std::hint::black_box(run_channel_model(&cfg, &medium)))
    });
    group.bench_function("systemc_refined_channel", |b| {
        b.iter(|| std::hint::black_box(run_refined_model(&cfg, &medium)))
    });

    let small = stimulus::sine(120, 1000.0, 44_100.0, 9000.0);
    group.bench_function("behavioural_clocked", |b| {
        b.iter(|| std::hint::black_box(run_beh_model(&cfg, &small)))
    });
    group.bench_function("rtl_two_process", |b| {
        b.iter(|| std::hint::black_box(run_rtl_model(&cfg, &small)))
    });
    group.finish();

    // Emit the normalised figure once for the record.
    let rows = scflow_bench::measure_fig8(&cfg, 1);
    println!("\n=== Figure 8: simulated 25 MHz cycles per wall second ===");
    for r in rows {
        println!(
            "{:<12} {:>14.0} cyc/s   ({} outputs in {:?})",
            r.model, r.cycles_per_sec, r.outputs, r.wall
        );
    }
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
