//! Figure 8 bench: simulation performance across the abstraction levels
//! (C++, SystemC channels, refined channel, behavioural, RTL), measured
//! with the in-repo `scflow-testkit` harness as simulated-cycles-per-wall-
//! second on a fixed conversion workload. Emits `BENCH_fig8.json`.

use scflow::algo::AlgoSrc;
use scflow::models::beh::{run_beh_model, CLOCK_PERIOD};
use scflow::models::channel::run_channel_model;
use scflow::models::harness::run_handshake;
use scflow::models::refined::run_refined_model;
use scflow::models::rtl::{build_rtl_src, run_rtl_model, RtlVariant};
use scflow::models::SimRun;
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_rtl::{CompiledProgram, RtlSim};
use scflow_testkit::Harness;

/// Simulated 25 MHz-equivalent clock cycles covered by one model run.
fn sim_cycles(run: &SimRun) -> u64 {
    match run.clock_cycles {
        Some(c) => c,
        None => run.sim_time.as_ps() / CLOCK_PERIOD.as_ps(),
    }
}

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let mut h = Harness::new("fig8_sim_performance");

    // Workload sizes chosen so each iteration is meaningful but short; the
    // normalised cycles/s figures come from the `tables` binary.
    let big = stimulus::sine(44_100, 1000.0, 44_100.0, 9000.0);
    h.bench_cycles("cpp_algorithmic", || {
        let mut src = AlgoSrc::new(&cfg);
        let out = std::hint::black_box(src.process(&big));
        // Unclocked model: audio time covered, scaled to 25 MHz cycles.
        let seconds_covered = out.len() as f64 / f64::from(cfg.out_rate);
        (seconds_covered * 25e6) as u64
    });

    let medium = stimulus::sine(1_000, 1000.0, 44_100.0, 9000.0);
    h.bench_cycles("systemc_channel", || {
        sim_cycles(&std::hint::black_box(run_channel_model(&cfg, &medium)))
    });
    h.bench_cycles("systemc_refined_channel", || {
        sim_cycles(&std::hint::black_box(run_refined_model(&cfg, &medium)))
    });

    let small = stimulus::sine(120, 1000.0, 44_100.0, 9000.0);
    h.bench_cycles("behavioural_clocked", || {
        sim_cycles(&std::hint::black_box(run_beh_model(&cfg, &small)))
    });
    h.bench_cycles("rtl_two_process", || {
        sim_cycles(&std::hint::black_box(run_rtl_model(&cfg, &small)))
    });

    // The synthesisable RTL module on both unified-API engines, appended
    // after the paper's five bars (their ordering is the figure).
    let golden = GoldenVectors::generate(&cfg, small.clone());
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl module");
    let budget = scflow::flow::cycle_budget(golden.len());
    h.bench_cycles("rtl_interpreted", || {
        let mut sim = RtlSim::new(&module);
        let (out, cycles) = run_handshake(&mut sim, &small, golden.len(), budget);
        assert_eq!(out, golden.output, "interpreted engine diverged");
        std::hint::black_box(cycles)
    });
    h.bench_cycles("rtl_compiled", || {
        let program = CompiledProgram::compile(&module).expect("rtl compiles");
        let mut sim = program.simulator();
        let (out, cycles) = run_handshake(&mut sim, &small, golden.len(), budget);
        assert_eq!(out, golden.output, "compiled engine diverged");
        std::hint::black_box(cycles)
    });

    print!("{}", h.table());

    // Emit the normalised figure once for the record.
    let rows = scflow_bench::measure_fig8(&cfg, 1);
    println!("\n=== Figure 8: simulated 25 MHz cycles per wall second ===");
    for r in &rows {
        println!(
            "{:<12} {:>14.0} cyc/s   ({} outputs in {:?})",
            r.model, r.cycles_per_sec, r.outputs, r.wall
        );
    }

    let path = scflow_bench::bench_output_path("BENCH_fig8.json");
    h.write_json(&path).expect("write BENCH_fig8.json");
    println!("\nwrote {}", path.display());
}
