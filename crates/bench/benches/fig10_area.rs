//! Figure 10 bench: times the synthesis runs that produce the area table
//! (the table itself is printed by `cargo run -p scflow-bench --bin
//! tables -- --fig10`).

use criterion::{criterion_group, criterion_main, Criterion};
use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::SrcConfig;
use scflow_gate::CellLibrary;
use scflow_synth::rtl::{synthesize, SynthOptions};

fn bench_fig10(c: &mut Criterion) {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let mut group = c.benchmark_group("fig10_synthesis");
    group.sample_size(10);

    group.bench_function("vhdl_ref", |b| {
        let m = build_vhdl_ref(&cfg).expect("build");
        b.iter(|| synthesize(&m, &lib, &SynthOptions::default()).expect("synth"));
    });
    group.bench_function("beh_unopt", |b| {
        let m = synthesize_beh_src(&cfg, BehVariant::Unoptimised)
            .expect("beh")
            .module;
        b.iter(|| synthesize(&m, &lib, &SynthOptions::default()).expect("synth"));
    });
    group.bench_function("beh_opt", |b| {
        let m = synthesize_beh_src(&cfg, BehVariant::Optimised)
            .expect("beh")
            .module;
        b.iter(|| synthesize(&m, &lib, &SynthOptions::default()).expect("synth"));
    });
    group.bench_function("rtl_unopt", |b| {
        let m = build_rtl_src(&cfg, RtlVariant::Unoptimised).expect("build");
        b.iter(|| synthesize(&m, &lib, &SynthOptions::default()).expect("synth"));
    });
    group.bench_function("rtl_opt", |b| {
        let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
        b.iter(|| synthesize(&m, &lib, &SynthOptions::default()).expect("synth"));
    });
    group.finish();

    // Print the actual area table once so bench logs carry the result.
    let fig = scflow_bench::measure_fig10(&cfg);
    println!("\n=== Figure 10: area relative to VHDL reference ===\n{fig}");
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
