//! Figure 10 bench: times the synthesis runs that produce the area table
//! (the table itself is printed by `cargo run -p scflow-bench --bin
//! tables -- --fig10`). Runs on the in-repo `scflow-testkit` harness.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::SrcConfig;
use scflow_gate::CellLibrary;
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Harness;

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let mut h = Harness::new("fig10_synthesis");

    {
        let m = build_vhdl_ref(&cfg).expect("build");
        h.bench("vhdl_ref", || {
            synthesize(&m, &lib, &SynthOptions::default()).expect("synth")
        });
    }
    {
        let m = synthesize_beh_src(&cfg, BehVariant::Unoptimised)
            .expect("beh")
            .module;
        h.bench("beh_unopt", || {
            synthesize(&m, &lib, &SynthOptions::default()).expect("synth")
        });
    }
    {
        let m = synthesize_beh_src(&cfg, BehVariant::Optimised)
            .expect("beh")
            .module;
        h.bench("beh_opt", || {
            synthesize(&m, &lib, &SynthOptions::default()).expect("synth")
        });
    }
    {
        let m = build_rtl_src(&cfg, RtlVariant::Unoptimised).expect("build");
        h.bench("rtl_unopt", || {
            synthesize(&m, &lib, &SynthOptions::default()).expect("synth")
        });
    }
    {
        let m = build_rtl_src(&cfg, RtlVariant::Optimised).expect("build");
        h.bench("rtl_opt", || {
            synthesize(&m, &lib, &SynthOptions::default()).expect("synth")
        });
    }
    print!("{}", h.table());

    // Print the actual area table once so bench logs carry the result.
    let fig = scflow_bench::measure_fig10(&cfg);
    println!("\n=== Figure 10: area relative to VHDL reference ===\n{fig}");
}
