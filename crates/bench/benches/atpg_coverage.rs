//! ATPG bench: staged random + PODEM pattern generation on the
//! synthesized RTL SRC and on a generator-family netlist, reporting
//! coverage, pattern count, and per-stage yield. Emits `BENCH_atpg.json`.
//!
//! The SRC run is the paper-facing number (collapsed stuck-at coverage
//! with scan DFT inserted); the AdderTree run probes scaling at 10^4
//! gates. Set `SCFLOW_ATPG_BENCH_LARGE=1` to add a 10^5-gate run.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::SrcConfig;
use scflow_gate::fault::{all_fault_sites, collapse_faults};
use scflow_gate::gen::{generate, GenKind, GenParams, Redundancy};
use scflow_gate::{generate_tests, insert_scan_chain, AtpgOptions, CellLibrary, GateNetlist};
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Harness;

struct RunStats {
    faults: usize,
    detected: usize,
    untestable: usize,
    aborted: usize,
    coverage_pct: f64,
    patterns: usize,
}

fn run_atpg(nl: &GateNetlist, lib: &CellLibrary, opts: &AtpgOptions) -> RunStats {
    let faults = all_fault_sites(nl);
    let collapsed = collapse_faults(nl, &faults);
    let r = generate_tests(nl, lib, &collapsed.faults, opts);
    RunStats {
        faults: collapsed.faults.len(),
        detected: r.detected(),
        untestable: r.untestable(),
        aborted: r.aborted(),
        coverage_pct: r.coverage_pct(),
        patterns: r.patterns.len(),
    }
}

fn record(h: &mut Harness, s: &RunStats) {
    h.metric("faults", s.faults as f64);
    h.metric("detected", s.detected as f64);
    h.metric("untestable", s.untestable as f64);
    h.metric("aborted", s.aborted as f64);
    h.metric("coverage_pct", s.coverage_pct);
    h.metric("patterns", s.patterns as f64);
}

fn gen_netlist(gates: usize) -> GateNetlist {
    let mut p = GenParams::sized(GenKind::AdderTree, gates, 7);
    p.redundancy = Redundancy::none();
    insert_scan_chain(&generate(&p))
}

fn main() {
    let lib = CellLibrary::generic_025u();
    let opts = AtpgOptions::default();

    let cfg = SrcConfig::cd_to_dvd();
    let rtl_module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    // synthesize() stitches the scan chain in by default.
    let src = synthesize(&rtl_module, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let mut h = Harness::new("atpg_coverage").with_iters(1).with_warmup(0);

    let mut src_stats = None;
    h.bench("atpg_src", || {
        let s = run_atpg(&src, &lib, &opts);
        let pct = s.coverage_pct;
        src_stats = Some(s);
        pct
    });
    let src_stats = src_stats.expect("src bench ran");
    record(&mut h, &src_stats);
    assert!(
        src_stats.coverage_pct >= 95.0,
        "SRC stuck-at coverage regressed below 95% ({:.1}%)",
        src_stats.coverage_pct
    );

    let mut gen_stats = None;
    let gen10k = gen_netlist(10_000);
    h.bench("atpg_gen_adder_10k", || {
        let s = run_atpg(&gen10k, &lib, &opts);
        let pct = s.coverage_pct;
        gen_stats = Some(s);
        pct
    });
    record(&mut h, &gen_stats.expect("gen bench ran"));

    let large = std::env::var("SCFLOW_ATPG_BENCH_LARGE").is_ok_and(|v| v == "1");
    if large {
        let mut stats = None;
        let gen100k = gen_netlist(100_000);
        h.bench("atpg_gen_adder_100k", || {
            let s = run_atpg(&gen100k, &lib, &opts);
            let pct = s.coverage_pct;
            stats = Some(s);
            pct
        });
        record(&mut h, &stats.expect("large gen bench ran"));
    }

    print!("{}", h.table());
    println!(
        "\nSRC: {} collapsed faults, {:.1}% coverage, {} compacted patterns ({} aborted)",
        src_stats.faults, src_stats.coverage_pct, src_stats.patterns, src_stats.aborted
    );
    if !large {
        println!("set SCFLOW_ATPG_BENCH_LARGE=1 for the 10^5-gate run");
    }

    let path = scflow_bench::bench_output_path("BENCH_atpg.json");
    h.write_json(&path).expect("write BENCH_atpg.json");
    println!("\nwrote {}", path.display());
}
