//! Compile-pass scaling bench: throughput of the gate engines with the
//! pass pipeline off vs on (`opt0` vs `opt2`), across generated
//! circuits from 10^3 to 10^5 gates, plus the RTL bytecode pipeline on
//! the SRC design. Emits `BENCH_opt.json`.
//!
//! Each size row generates one deterministic netlist
//! ([`scflow_gate::gen`]) carrying the default redundancy dose (~1/3
//! of the cells removable), optimizes a copy at level 2, and measures
//! simulated cycles per wall second on:
//!
//! * `gate.fast`   — the zero-delay levelized engine over the netlist,
//! * `gate.bitpar` — the compiled bit-parallel engine in
//!   single-pattern mode,
//!
//! for both variants. A light output cross-check runs alongside the
//! timing (the full byte-differential lives in the test suites). The
//! bench exits non-zero if the level-2 `gate.bitpar` throughput at the
//! largest size falls under the floor (`SCFLOW_OPT_MIN`, default
//! 1.15x) of the unoptimized run.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::SrcConfig;
use scflow_gate::gen::{generate, GenKind, GenParams};
use scflow_gate::{optimize, FastGateSim, GateProgram, NetlistStats, Simulation};
use scflow_hwtypes::{Bv, PassConfig};
use scflow_rtl::CompiledProgram;
use scflow_testkit::Harness;

/// Target core gate counts — three decades. `SCFLOW_OPT_BENCH_MAX`
/// (gates) trims the sweep for quick runs; the floor is always taken
/// at the largest size that ran.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Poke the stimulus port and run; the generated designs keep
/// themselves busy through their LFSR state rows.
fn drive(sim: &mut (impl Simulation + ?Sized), cycles: u64) -> u64 {
    sim.poke("a", Bv::new(0x5a, 8));
    sim.run_cycles(cycles);
    cycles
}

fn main() {
    let max_gates: usize = std::env::var("SCFLOW_OPT_BENCH_MAX")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(usize::MAX);
    let sizes: Vec<usize> = SIZES.iter().copied().filter(|&s| s <= max_gates).collect();
    assert!(!sizes.is_empty(), "SCFLOW_OPT_BENCH_MAX excludes every size");

    let mut h = Harness::new("opt_scaling").with_iters(5).with_warmup(1);
    let passes = PassConfig::for_level(2);
    // The floor compares the last size's bitpar rows.
    let mut floor_pair: Option<(f64, f64)> = None;

    for &size in &sizes {
        let params = GenParams::sized(GenKind::Pipeline, size, 7);
        let nl = generate(&params);
        let opt = optimize(&nl, &passes).expect("passes run");
        let stats_before = NetlistStats::compute(&nl).expect("stats");
        let stats_after = NetlistStats::compute(&opt.netlist).expect("stats");
        println!(
            "{}: {} cells -> {} ({} folded, {} cse, {} dce), levels {} -> {}",
            nl.name(),
            opt.stats.cells_before,
            opt.stats.cells_after,
            opt.stats.folded,
            opt.stats.cse_merged,
            opt.stats.dce_removed,
            stats_before.levels,
            stats_after.levels,
        );

        // Keep the total simulated work roughly constant across sizes.
        let cycles = (2_000_000 / size as u64).clamp(16, 2_048);

        // Sanity: both variants agree on the observed outputs before
        // any timing is trusted.
        {
            let p0 = GateProgram::compile(&nl).expect("compiles");
            let p2 = GateProgram::compile(&opt.netlist).expect("compiles");
            let mut s0 = p0.simulator();
            let mut s2 = p2.simulator();
            for s in [&mut s0 as &mut dyn Simulation, &mut s2] {
                s.poke("a", Bv::new(0x5a, 8));
            }
            for c in 0..64u64 {
                s0.tick();
                s2.tick();
                assert_eq!(s0.peek("y"), s2.peek("y"), "{}: cycle {c}", nl.name());
            }
        }

        for (variant, netlist) in [("opt0", &nl), ("opt2", &opt.netlist)] {
            let r = h.bench_cycles(&format!("gate.fast/{size}/{variant}"), || {
                let mut sim = FastGateSim::new(netlist).expect("levelizes");
                drive(&mut sim, cycles)
            });
            let fast_cps = r.cycles_per_sec.unwrap_or(0.0);
            h.metric("gates", netlist.comb_count() as f64);
            let _ = fast_cps;

            let program = GateProgram::compile(netlist).expect("compiles");
            let mut sim = program.simulator();
            sim.poke("a", Bv::new(0x5a, 8));
            let r = h.bench_cycles(&format!("gate.bitpar/{size}/{variant}"), || {
                sim.run_cycles(cycles);
                cycles
            });
            let bit_cps = r.cycles_per_sec.unwrap_or(0.0);
            h.metric("gates", netlist.comb_count() as f64);
            if size == *sizes.last().expect("nonempty") {
                let slot = &mut floor_pair.get_or_insert((0.0, 0.0));
                if variant == "opt0" {
                    slot.0 = bit_cps;
                } else {
                    slot.1 = bit_cps;
                }
            }
        }
    }

    // The RTL bytecode pipeline on the flow's own design: compile the
    // optimised SRC at level 0 and level 2 and compare the compiled
    // engine's throughput.
    let cfg = SrcConfig::cd_to_dvd();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl builds");
    for (variant, level) in [("opt0", 0u8), ("opt2", 2)] {
        let program =
            CompiledProgram::compile_with(&module, &PassConfig::for_level(level)).expect("compiles");
        let mut sim = program.simulator();
        sim.poke("in_sample", Bv::new(0x1234, 16));
        sim.poke("in_sample_valid", Bv::bit(true));
        sim.poke("out_sample_ready", Bv::bit(true));
        let r = h.bench_cycles(&format!("rtl.compiled/src/{variant}"), || {
            sim.run_cycles(4_096);
            4_096
        });
        let _ = r;
        h.metric("insts", program.instruction_count() as f64);
        h.metric("slots", program.slot_count() as f64);
    }

    let (off_cps, on_cps) = floor_pair.expect("largest size always benches");
    let speedup = on_cps / off_cps.max(1e-12);
    h.metric("opt_speedup", speedup);

    print!("{}", h.table());
    println!(
        "\ngate.bitpar at {} gates: opt0 {off_cps:.0} cycles/s, opt2 {on_cps:.0} \
         cycles/s ({speedup:.2}x)",
        sizes.last().expect("nonempty")
    );

    let path = scflow_bench::bench_output_path("BENCH_opt.json");
    h.write_json(&path).expect("write BENCH_opt.json");
    println!("wrote {}", path.display());

    let floor: f64 = std::env::var("SCFLOW_OPT_MIN")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1.15);
    if speedup < floor {
        eprintln!(
            "FAILED: pass pipeline buys only {speedup:.2}x gate.bitpar throughput \
             at the largest size (floor {floor:.2}x)"
        );
        std::process::exit(1);
    }
}
