//! Service throughput bench: protocol requests per second through
//! `Server::handle_line` at 1, 4 and 16 concurrent sessions, plus the
//! session-open latency split into cold-compile vs cache-hit. Emits
//! `BENCH_serve.json`.
//!
//! Each concurrent session runs on its own driver thread against one
//! shared server, mixing pokes, steps, peeks and an 8-item `step_batch`
//! — the shape a stimulus sweep actually produces. The cache rows
//! isolate what the content-addressed compile cache buys on
//! `open_session`: the cold row pays synthesis + levelization, the hit
//! row only the lookup and worker spawn.

use scflow::prelude::ServeOptions;
use scflow_serve::Server;
use scflow_testkit::Harness;

fn opts(threads: usize) -> ServeOptions {
    ServeOptions {
        addr: None,
        threads,
        cache_cap: 8,
    }
}

fn open(server: &Server, engine: &str) -> String {
    let reply = server.handle_line(&format!(
        r#"{{"id":0,"op":"open_session","design":"rtl_opt","engine":"{engine}","coverage":false}}"#
    ));
    assert!(reply.contains(r#""ok":true"#), "open failed: {reply}");
    let tag = r#""session":""#;
    let start = reply.find(tag).unwrap() + tag.len();
    let end = reply[start..].find('"').unwrap() + start;
    reply[start..end].to_owned()
}

fn close(server: &Server, sid: &str) {
    let r = server.handle_line(&format!(r#"{{"id":0,"op":"close","session":"{sid}"}}"#));
    assert!(r.contains(r#""ok":true"#), "{r}");
}

/// One sweep iteration on a session: 3 pokes, a step, 2 peeks and an
/// 8-item batch = 14 protocol requests.
const REQUESTS_PER_SWEEP: u64 = 14;

fn sweep(server: &Server, sid: &str, round: u64) {
    for (port, v, w) in [
        ("in_sample", (round * 257) & 0xffff, 16),
        ("in_sample_valid", 1, 1),
        ("out_sample_ready", 1, 1),
    ] {
        let r = server.handle_line(&format!(
            r#"{{"id":1,"op":"poke","session":"{sid}","port":"{port}","value":"0x{v:x}","width":{w}}}"#
        ));
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    let r = server.handle_line(&format!(
        r#"{{"id":1,"op":"step","session":"{sid}","cycles":2}}"#
    ));
    assert!(r.contains(r#""ok":true"#), "{r}");
    for port in ["out_sample", "out_sample_valid"] {
        let r = server.handle_line(&format!(
            r#"{{"id":1,"op":"peek","session":"{sid}","port":"{port}"}}"#
        ));
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    let items: Vec<String> = (0u64..8)
        .map(|i| {
            format!(
                r#"{{"pokes":[{{"port":"in_sample","value":"0x{:x}","width":16}}],"cycles":2}}"#,
                (round * 8 + i) & 0xffff
            )
        })
        .collect();
    let r = server.handle_line(&format!(
        r#"{{"id":1,"op":"step_batch","session":"{sid}","items":[{}],"read":["out_sample"]}}"#,
        items.join(",")
    ));
    assert!(r.contains(r#""ok":true"#), "{r}");
}

fn main() {
    let mut h = Harness::new("serve_throughput").with_iters(3).with_warmup(1);

    // --- open_session latency: cold compile vs cache hit ------------
    h.bench("open_cold_compile", || {
        // Fresh server: nothing cached, the open pays synthesis and
        // levelization of the gate program.
        let server = Server::new(&opts(4));
        let sid = open(&server, "gate.bitpar");
        close(&server, sid.as_str());
    });
    let hit_server = Server::new(&opts(4));
    let warm = open(&hit_server, "gate.bitpar"); // populate the cache
    h.bench("open_cache_hit", || {
        let sid = open(&hit_server, "gate.bitpar");
        close(&hit_server, sid.as_str());
    });
    close(&hit_server, warm.as_str());
    let cold_ns = h.results[0].median_ns;
    let hit_ns = h.results[1].median_ns;
    h.metric("cold_over_hit", cold_ns / hit_ns.max(1e-12));

    // --- request throughput at 1 / 4 / 16 concurrent sessions -------
    const SWEEPS: u64 = 40;
    for sessions in [1usize, 4, 16] {
        let server = Server::new(&opts(sessions));
        let sids: Vec<String> = (0..sessions)
            .map(|_| open(&server, "gate.bitpar"))
            .collect();
        let name = format!("requests_{sessions}_sessions");
        h.bench(&name, || {
            std::thread::scope(|scope| {
                for sid in &sids {
                    scope.spawn(|| {
                        for round in 0..SWEEPS {
                            sweep(&server, sid, round);
                        }
                    });
                }
            });
        });
        let total = SWEEPS * REQUESTS_PER_SWEEP * sessions as u64;
        let last = h.results.last().expect("bench ran");
        let per_sec = total as f64 / (last.median_ns / 1e9);
        h.set_threads(sessions as u32);
        h.metric("requests", total as f64);
        h.metric("requests_per_sec", per_sec);
        for sid in &sids {
            close(&server, sid);
        }
    }

    print!("{}", h.table());
    println!(
        "\nopen_session: cold compile {:.2} ms, cache hit {:.3} ms ({:.0}x)",
        cold_ns / 1e6,
        hit_ns / 1e6,
        cold_ns / hit_ns.max(1e-12)
    );

    let path = scflow_bench::bench_output_path("BENCH_serve.json");
    h.write_json(&path).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
