//! Fault-simulation bench: serial per-fault coverage on the event-driven
//! simulator vs PPSFP on the compiled bit-parallel engine, on the
//! synthesized RTL SRC. Emits `BENCH_fault.json`.
//!
//! The serial reference is orders of magnitude slower, so it runs on a
//! strided fault subset; PPSFP runs both that subset (for the wall-clock
//! ratio at identical coverage) and the full fault list.

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::SrcConfig;
use scflow_gate::fault::{
    all_fault_sites, fault_coverage, fault_coverage_serial, random_patterns, CoverageResult,
};
use scflow_gate::CellLibrary;
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::Harness;

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let rtl_module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let gate_rtl = synthesize(&rtl_module, &lib, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let all_faults = all_fault_sites(&gate_rtl);
    let stride = (all_faults.len() / 32).max(1);
    let subset: Vec<_> = all_faults.iter().copied().step_by(stride).collect();
    let patterns = random_patterns(&gate_rtl, 16, 0xBEEF);

    let mut h = Harness::new("fault_coverage").with_iters(3).with_warmup(1);

    let mut serial_result: Option<CoverageResult> = None;
    h.bench("fault_serial_subset", || {
        let r = fault_coverage_serial(&gate_rtl, &lib, &subset, &patterns);
        let pct = r.coverage_pct();
        serial_result = Some(r);
        pct
    });
    let serial = serial_result.expect("serial bench ran");
    h.metric("faults", subset.len() as f64);
    h.metric("patterns", patterns.len() as f64);
    h.metric("coverage_pct", serial.coverage_pct());

    h.bench("fault_ppsfp_subset", || {
        let r = fault_coverage(&gate_rtl, &lib, &subset, &patterns);
        assert_eq!(
            r.detected_mask, serial.detected_mask,
            "PPSFP detected set diverged from the serial reference"
        );
        r.coverage_pct()
    });
    h.metric("faults", subset.len() as f64);
    h.metric("patterns", patterns.len() as f64);
    h.metric("coverage_pct", serial.coverage_pct());
    let speedup = h.results[0].median_ns / h.results[1].median_ns.max(1e-12);
    h.metric("speedup_vs_serial", speedup);

    let mut full_pct = 0.0;
    h.bench("fault_ppsfp_full", || {
        let r = fault_coverage(&gate_rtl, &lib, &all_faults, &patterns);
        full_pct = r.coverage_pct();
        full_pct
    });
    h.metric("faults", all_faults.len() as f64);
    h.metric("patterns", patterns.len() as f64);
    h.metric("coverage_pct", full_pct);

    print!("{}", h.table());
    println!(
        "\nsubset: {} of {} faults, {} patterns, {:.1}% coverage (serial == PPSFP)",
        subset.len(),
        all_faults.len(),
        patterns.len(),
        serial.coverage_pct()
    );
    println!(
        "full list: {} faults, {:.1}% coverage",
        all_faults.len(),
        full_pct
    );
    println!("PPSFP speedup over serial on the subset: {speedup:.1}x");

    let path = scflow_bench::bench_output_path("BENCH_fault.json");
    h.write_json(&path).expect("write BENCH_fault.json");
    println!("\nwrote {}", path.display());
}
