//! Prints the paper's tables and figures from the reproduction.
//!
//! ```text
//! cargo run --release -p scflow-bench --bin tables -- --all
//! cargo run --release -p scflow-bench --bin tables -- --fig8 --fig10
//! ```

use scflow::SrcConfig;

const KNOWN_FLAGS: [&str; 23] = [
    "--down",
    "--all",
    "--verify",
    "--fig7",
    "--fig8",
    "--fig9",
    "--fig10",
    "--timing",
    "--fault",
    "--atpg",
    "--check-atpg",
    "--ablation-sched",
    "--ablation-regs",
    "--ablation-share",
    "--ablation-pack",
    "--check-engines",
    "--check-gate",
    "--check-snapshot",
    "--check-opt",
    "--netlist-stats",
    "--profile",
    "--coverage",
    "--help",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args.iter().find(|a| !KNOWN_FLAGS.contains(&a.as_str())) {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!("known flags: {}", KNOWN_FLAGS.join(" "));
        std::process::exit(2);
    }
    // The `SCFLOW_METRICS` / `SCFLOW_PROFILE` environment knobs act as
    // implicit `--coverage` / `--profile` flags.
    let has = |f: &str| {
        args.iter().any(|a| a == f)
            || args.iter().any(|a| a == "--all")
            || (f == "--coverage" && scflow_obs::metrics_enabled())
            || (f == "--profile" && scflow_obs::profile_enabled())
    };
    if args.is_empty() && !has("--coverage") && !has("--profile") || has("--help") {
        eprintln!(
            "usage: tables [--down] [--all] [--verify] [--fig7] [--fig8] [--fig9] \
             [--fig10] [--timing] [--fault] [--atpg] [--check-atpg] \
             [--ablation-sched] [--ablation-regs] [--ablation-share] \
             [--ablation-pack] [--check-engines] [--check-gate] \
             [--check-snapshot] [--check-opt] [--netlist-stats] [--profile] \
             [--coverage]"
        );
        std::process::exit(2);
    }

    // --down switches to the 48 kHz -> 44.1 kHz configuration.
    let cfg = if args.iter().any(|a| a == "--down") {
        SrcConfig::dvd_to_cd()
    } else {
        SrcConfig::cd_to_dvd()
    };
    println!("configuration: {} Hz -> {} Hz\n", cfg.in_rate, cfg.out_rate);

    if has("--verify") {
        println!("=== bit-accuracy re-validation of every refinement level ===\n");
        let input = scflow::stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
        match scflow::flow::validate_all_levels(&cfg, &input) {
            Ok(()) => println!("all synthesisable levels bit-accurate against the golden model\n"),
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if has("--fig7") {
        println!("=== Figure 7: time quantisation of sample events ===\n");
        let input = scflow::stimulus::sine(30, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let chan = scflow::models::channel::run_channel_model(&cfg, &input);
        let beh = scflow::models::beh::run_beh_model(&cfg, &input);
        let period = scflow::models::beh::CLOCK_PERIOD.as_ps();
        println!(
            "{:<6} {:>18} {:>8} {:>18} {:>8}",
            "sample", "continuous (ps)", "on-grid", "clocked (ps)", "on-grid"
        );
        for i in 0..chan.output_times.len().min(beh.output_times.len()).min(8) {
            let c = chan.output_times[i].as_ps();
            let q = beh.output_times[i].as_ps();
            println!(
                "{i:<6} {c:>18} {:>8} {q:>18} {:>8}",
                c % period == period / 2,
                q % period == period / 2
            );
        }
        println!("(clocked sample events can only occur at clock edges — Figure 7)\n");
    }

    if has("--fig8") {
        println!("=== Figure 8: simulation performance by abstraction level ===");
        println!("(simulated 25 MHz-equivalent clock cycles per wall second)\n");
        println!("{:<12} {:>16} {:>10} {:>12}", "model", "cycles/sec", "outputs", "wall");
        for r in scflow_bench::measure_fig8(&cfg, 2) {
            println!(
                "{:<12} {:>16.0} {:>10} {:>12?}",
                r.model, r.cycles_per_sec, r.outputs, r.wall
            );
        }
        println!();
    }

    if has("--fig9") {
        println!("=== Figure 9: co-simulation vs native HDL simulation ===");
        println!("(simulated clock cycles per wall second)\n");
        println!("{:<11} {:<12} {:>14} {:>10}", "DUT", "testbench", "cycles/sec", "cycles");
        for r in scflow_bench::measure_fig9(&cfg, 40) {
            println!(
                "{:<11} {:<12} {:>14.0} {:>10}",
                r.dut, r.testbench, r.cycles_per_sec, r.cycles
            );
        }
        println!();
    }

    if has("--fault") {
        println!("=== Scan-test fault coverage (PPSFP, SCFLOW_FAULT_THREADS workers) ===\n");
        let lib = scflow_gate::CellLibrary::generic_025u();
        match scflow::flow::run_fault_flow(&cfg, &lib, 32, 0xBEEF) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if has("--fig10") {
        println!("=== Figure 10: gate-level area relative to the VHDL reference ===\n");
        println!("{}", scflow_bench::measure_fig10(&cfg));
    }

    if has("--timing") {
        println!("=== Timing closure at the paper's 40 ns clock ===\n");
        println!("{:<12} {:>12} {:>8}", "design", "path (ps)", "meets");
        for (design, path, meets) in scflow_bench::timing_table(&cfg) {
            println!("{design:<12} {path:>12} {meets:>8}");
        }
        println!();
    }

    let print_ablation = |title: &str, rows: Vec<scflow_bench::AblationRow>| {
        println!("=== Ablation: {title} ===\n");
        println!(
            "{:<30} {:>12} {:>8} {:>8}",
            "configuration", "area um^2", "flops", "states"
        );
        for r in rows {
            println!(
                "{:<30} {:>12.1} {:>8} {:>8}",
                r.config, r.total_um2, r.flops, r.states
            );
        }
        println!();
    };

    if has("--ablation-sched") {
        print_ablation("I/O scheduling mode", scflow_bench::ablation_scheduling(&cfg));
    }
    if has("--ablation-regs") {
        print_ablation(
            "register allocation",
            scflow_bench::ablation_register_merging(&cfg),
        );
    }
    if has("--ablation-share") {
        print_ablation(
            "multiplier sharing",
            scflow_bench::ablation_resource_sharing(&cfg),
        );
    }
    if has("--ablation-pack") {
        print_ablation(
            "statement packing",
            scflow_bench::ablation_statement_packing(&cfg),
        );
    }

    if has("--check-engines") {
        println!("=== Engine check: compiled levelized vs interpreted RTL ===\n");
        let check = scflow_bench::check_engines(&cfg, 120);
        println!("{:<14} {:>16}", "engine", "cycles/sec");
        println!("{:<14} {:>16.0}", "interpreted", check.interpreted_cps);
        println!("{:<14} {:>16.0}", "compiled", check.compiled_cps);
        println!("speedup: {:.2}x\n", check.speedup());
        if check.speedup() < 1.0 {
            eprintln!(
                "FAILED: compiled engine is slower than the interpreter \
                 ({:.0} vs {:.0} cycles/sec)",
                check.compiled_cps, check.interpreted_cps
            );
            std::process::exit(1);
        }
    }

    if has("--check-gate") {
        println!("=== Gate-engine check: bit-parallel vs event-driven ===\n");
        let check = scflow_bench::check_gate_engines(&cfg, 30);
        println!("{:<14} {:>16}", "engine", "cycles/sec");
        println!("{:<14} {:>16.0}", "event-driven", check.event_cps);
        println!("{:<14} {:>16.0}", "fast", check.fast_cps);
        println!("{:<14} {:>16.0}", "bit-parallel", check.bitpar_cps);
        println!("DUT speedup (bitpar vs event): {:.2}x", check.dut_speedup());
        println!(
            "fault sim: {} faults x {} patterns, {:.1}% coverage, \
             serial {:?} vs PPSFP {:?} ({:.1}x)\n",
            check.faults,
            check.patterns,
            check.coverage_pct,
            check.fault_serial_wall,
            check.fault_ppsfp_wall,
            check.fault_speedup()
        );
        if !check.coverage_matches {
            eprintln!("FAILED: PPSFP detected-fault set differs from the serial reference");
            std::process::exit(1);
        }
        if check.bitpar_cps < check.event_cps {
            eprintln!(
                "FAILED: bit-parallel engine is slower than the event-driven one \
                 ({:.0} vs {:.0} cycles/sec)",
                check.bitpar_cps, check.event_cps
            );
            std::process::exit(1);
        }
    }

    if has("--check-snapshot") {
        println!("=== Snapshot check: forked replays vs straight runs ===\n");
        let check = scflow_bench::check_snapshot(&cfg);
        let straight = scflow_bench::bench_output_path("SNAPSHOT_straight.txt");
        let forked = scflow_bench::bench_output_path("SNAPSHOT_forked.txt");
        std::fs::write(&straight, &check.straight).expect("write SNAPSHOT_straight.txt");
        std::fs::write(&forked, &check.forked).expect("write SNAPSHOT_forked.txt");
        println!(
            "{} scenarios x 2 engines: outputs, violations, coverage, VCD and \
             metrics {}",
            check.scenarios,
            if check.matches() {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        println!("wrote {}", straight.display());
        println!("wrote {}\n", forked.display());
        if !check.matches() {
            eprintln!("FAILED: snapshot-forked replays diverged from the straight runs");
            std::process::exit(1);
        }
    }

    // Observability sinks, declared ahead of the sections that feed
    // them: everything merges into one METRICS.json.
    let mut metrics_out = scflow_obs::MetricsRegistry::new();
    let mut profile_out: Option<scflow_obs::Profiler> = None;
    let mut emit_metrics = false;

    if has("--check-opt") {
        println!("=== Pass-pipeline check: passes off vs level 2, every compiled engine ===\n");
        println!("{:<18} {:>14} {:>14} {:>9}", "engine", "off cyc/s", "opt2 cyc/s", "speedup");
        let rows = scflow_bench::check_opt(&cfg, 60);
        let mut slower = Vec::new();
        for r in &rows {
            println!(
                "{:<18} {:>14.0} {:>14.0} {:>8.2}x",
                r.engine,
                r.off_cps,
                r.on_cps,
                r.speedup()
            );
            if r.speedup() < 0.5 {
                slower.push(r.engine);
            }
        }
        println!("\nall engines bit-accurate against the golden model at both levels\n");
        // The generated-circuit floor lives in the opt_scaling bench;
        // here only a gross regression (passes *halving* throughput on
        // the small SRC) fails the check.
        if !slower.is_empty() {
            eprintln!("FAILED: pass pipeline halves throughput on: {slower:?}");
            std::process::exit(1);
        }
    }

    if has("--netlist-stats") {
        println!("=== Netlist statistics (before / after the level-2 passes) ===\n");
        println!(
            "{:<14} {:>8} {:>7} {:>8} {:>5} {:>7} {:>11} {:>6}",
            "netlist", "gates", "flops", "nets", "mems", "levels", "max fanout", "cut"
        );
        let (rows, stats_metrics) = scflow_bench::netlist_stats(&cfg);
        for (name, s) in &rows {
            println!(
                "{name:<14} {:>8} {:>7} {:>8} {:>5} {:>7} {:>11} {:>6}",
                s.gates, s.flops, s.nets, s.mems, s.levels, s.max_fanout, s.cut
            );
        }
        println!();
        if scflow_obs::metrics_enabled() {
            metrics_out.merge_from(&stats_metrics);
            emit_metrics = true;
        }
    }

    if has("--atpg") {
        println!("=== ATPG: staged random + PODEM test generation (SCFLOW_ATPG_* knobs) ===\n");
        let lib = scflow_gate::CellLibrary::generic_025u();
        let opts = scflow_gate::AtpgOptions::from_env();
        match scflow::flow::run_atpg_flow(&cfg, &lib, &opts) {
            Ok((report, result)) => {
                println!("{report}");
                // Always emitted (like --coverage): verify.sh cmp's the
                // METRICS.json of two runs at different thread counts,
                // which pins the whole result — patterns, classes,
                // curve — as thread-schedule independent.
                let mut reg = scflow_obs::MetricsRegistry::new();
                result.stats.register_into(&mut reg, "atpg");
                reg.set_counter("atpg.faults", report.faults as u64);
                reg.set_counter("atpg.uncollapsed", report.uncollapsed as u64);
                reg.set_counter("atpg.detected", report.detected as u64);
                reg.set_counter("atpg.untestable", report.untestable as u64);
                reg.set_counter("atpg.aborted", report.aborted as u64);
                reg.set_counter("atpg.patterns", report.patterns as u64);
                reg.set_counter(
                    "atpg.coverage_pct_x10",
                    (report.coverage_pct * 10.0).round() as u64,
                );
                metrics_out.merge_from(&reg);
                emit_metrics = true;
                // Optional floor assert for CI: SCFLOW_ATPG_MIN=95 fails
                // the run below that collapsed stuck-at coverage.
                if let Ok(min) = std::env::var("SCFLOW_ATPG_MIN") {
                    let min: f64 = min.parse().unwrap_or(0.0);
                    if report.coverage_pct < min {
                        eprintln!(
                            "FAILED: ATPG coverage {:.1}% below SCFLOW_ATPG_MIN={min}%",
                            report.coverage_pct
                        );
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if has("--check-atpg") {
        println!("=== ATPG check: directed stage smoke run (tiny budget) ===\n");
        let lib = scflow_gate::CellLibrary::generic_025u();
        let opts = scflow_gate::AtpgOptions {
            random: false,
            directed: true,
            budget: 32,
            compact: false,
            ..scflow_gate::AtpgOptions::default()
        };
        match scflow::flow::run_atpg_flow(&cfg, &lib, &opts) {
            Ok((report, result)) => {
                println!(
                    "directed-only on {}: {}/{} detected, {} untestable, {} aborted, \
                     {} patterns",
                    report.design,
                    report.detected,
                    report.faults,
                    report.untestable,
                    report.aborted,
                    report.patterns
                );
                // Every emitted pattern must have come out of a verified
                // detection; classes must partition the fault list.
                let classified = report.detected + report.untestable + report.aborted
                    + result
                        .classes
                        .iter()
                        .filter(|c| matches!(c, scflow_gate::FaultClass::Undetected))
                        .count();
                if classified != report.faults || report.detected == 0 {
                    eprintln!("FAILED: directed stage produced an inconsistent classification");
                    std::process::exit(1);
                }
                println!("directed stage classification consistent\n");
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    // Observability subcommands: both feed the same METRICS.json, so
    // `--all` (or SCFLOW_METRICS plus SCFLOW_PROFILE) writes one
    // combined artefact. The metrics object stays deterministic; only
    // the optional profile section carries wall-clock numbers.
    if has("--coverage") {
        println!("=== Toggle coverage across all simulation engines ===\n");
        let rep = scflow_bench::measure_coverage(&cfg);
        println!("{:<24} {:>9}", "level", "coverage");
        println!("{:<24} {:>8.1}%", "RTL (per net bit)", rep.rtl_percent);
        println!("{:<24} {:>8.1}%", "gate (per cell output)", rep.gate_percent);
        println!(
            "within-level maps byte-identical across engines: {}\n",
            if rep.maps_match { "yes" } else { "NO" }
        );
        if !rep.maps_match {
            eprintln!("FAILED: toggle-coverage maps differ between engines at the same level");
            std::process::exit(1);
        }
        metrics_out.merge_from(&rep.metrics);
        emit_metrics = true;
    }

    if has("--profile") {
        println!("=== Flow profile: wall time per phase ===\n");
        let lib = scflow_gate::CellLibrary::generic_025u();
        let input = scflow::stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
        match scflow::flow::profile_flow(&cfg, &lib, &input, 32, 0xBEEF) {
            Ok(p) => {
                print!("{}", p.report());
                println!("total: {:.1} ms\n", p.total_ns() as f64 / 1e6);
                metrics_out.merge_from(&p.metrics);
                profile_out = Some(p.profiler);
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
        emit_metrics = true;
    }

    if emit_metrics {
        let path = scflow_bench::write_metrics_json(&metrics_out, profile_out.as_ref());
        println!("wrote {}", path.display());
    }
}
