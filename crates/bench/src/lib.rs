//! Shared measurement harness behind the figure benches and the
//! `tables` binary that regenerate the paper's figures.
//!
//! * [`measure_fig8`] — simulation performance (simulated clock cycles per
//!   wall-clock second, 25 MHz equivalent for unclocked models) across the
//!   abstraction levels.
//! * [`measure_fig9`] — the three HDL artefacts, each in the interpreted
//!   "VHDL testbench" and in the compiled "SystemC testbench"
//!   (co-simulation).
//! * [`measure_fig10`] — the gate-level area table (via
//!   [`scflow::flow::run_area_flow`]).
//! * `ablation_*` — per-knob syntheses for the design-choice tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scflow::algo::AlgoSrc;
use scflow::models::beh::{beh_options, beh_program, run_beh_model, BehVariant, CLOCK_PERIOD};
use scflow::models::channel::run_channel_model;
use scflow::models::harness::run_handshake;
use scflow::models::refined::run_refined_model;
use scflow::models::rtl::{build_rtl_src, run_rtl_model, RtlVariant};
use scflow::verify::GoldenVectors;
use scflow::{stimulus, SrcConfig};
use scflow_cosim::{run_kernel_cosim, run_native_hdl, run_native_hdl_compiled, CosimRun};
use scflow_gate::fault;
use scflow_gate::{sim_threads, CellLibrary, FastGateSim, GateProgram, GateSim, ParGateSim};
use scflow_rtl::{CompiledProgram, RtlSim};
use scflow_synth::beh::synthesize_beh;
use scflow_synth::rtl::{synthesize, SynthOptions};
use std::time::Instant;

/// One bar of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Model name (x-axis label).
    pub model: &'static str,
    /// Simulated 25 MHz-equivalent clock cycles per wall second.
    pub cycles_per_sec: f64,
    /// Wall time of the measured run.
    pub wall: std::time::Duration,
    /// Output samples produced (work done).
    pub outputs: usize,
}

/// Measures the simulation performance of every abstraction level.
///
/// `scale` multiplies the per-model workload sizes (1 = quick, 10 =
/// steady numbers).
pub fn measure_fig8(cfg: &SrcConfig, scale: usize) -> Vec<Fig8Row> {
    let mut rows = Vec::new();

    // C++ (algorithmic): pure compiled model; simulated time is the
    // audio time covered, scaled to 25 MHz cycles like the paper.
    {
        let input = stimulus::sine(20_000 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let mut src = AlgoSrc::new(cfg);
        let t0 = Instant::now();
        let out = src.process(&input);
        let wall = t0.elapsed();
        let seconds_covered = out.len() as f64 / f64::from(cfg.out_rate);
        let cycles = seconds_covered * 25e6;
        rows.push(Fig8Row {
            model: "C++",
            cycles_per_sec: cycles / wall.as_secs_f64().max(1e-12),
            wall,
            outputs: out.len(),
        });
    }

    // SystemC with channels.
    {
        let input = stimulus::sine(2_000 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let t0 = Instant::now();
        let run = run_channel_model(cfg, &input);
        let wall = t0.elapsed();
        rows.push(Fig8Row {
            model: "SystemC",
            cycles_per_sec: run.cycles_per_second(wall, CLOCK_PERIOD),
            wall,
            outputs: run.outputs.len(),
        });
    }

    // Refined channel.
    {
        let input = stimulus::sine(2_000 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let t0 = Instant::now();
        let run = run_refined_model(cfg, &input);
        let wall = t0.elapsed();
        rows.push(Fig8Row {
            model: "SystemC-ref",
            cycles_per_sec: run.cycles_per_second(wall, CLOCK_PERIOD),
            wall,
            outputs: run.outputs.len(),
        });
    }

    // Behavioural (clocked kernel model).
    {
        let input = stimulus::sine(400 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let t0 = Instant::now();
        let run = run_beh_model(cfg, &input);
        let wall = t0.elapsed();
        rows.push(Fig8Row {
            model: "BEH",
            cycles_per_sec: run.cycles_per_second(wall, CLOCK_PERIOD),
            wall,
            outputs: run.outputs.len(),
        });
    }

    // RTL (clocked two-process kernel model).
    {
        let input = stimulus::sine(400 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let t0 = Instant::now();
        let run = run_rtl_model(cfg, &input);
        let wall = t0.elapsed();
        rows.push(Fig8Row {
            model: "RTL",
            cycles_per_sec: run.cycles_per_second(wall, CLOCK_PERIOD),
            wall,
            outputs: run.outputs.len(),
        });
    }

    // The synthesisable RTL module on both unified-API engines: the
    // tree-walking interpreter and the compiled levelized engine. Appended
    // after the paper's five bars so Figure 8's original ordering reads
    // off the leading rows unchanged.
    {
        let input = stimulus::sine(400 * scale, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let golden = GoldenVectors::generate(cfg, input.clone());
        let module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl module");
        let budget = scflow::flow::cycle_budget(golden.len());

        let t0 = Instant::now();
        let mut sim = RtlSim::new(&module);
        let (out, cycles) = run_handshake(&mut sim, &input, golden.len(), budget);
        let wall = t0.elapsed();
        assert_eq!(out, golden.output, "interpreted engine diverged");
        rows.push(Fig8Row {
            model: "RTL-interp",
            cycles_per_sec: cycles as f64 / wall.as_secs_f64().max(1e-12),
            wall,
            outputs: out.len(),
        });

        let t0 = Instant::now();
        let program = CompiledProgram::compile(&module).expect("rtl compiles");
        let mut sim = program.simulator();
        let (out, cycles) = run_handshake(&mut sim, &input, golden.len(), budget);
        let wall = t0.elapsed();
        assert_eq!(out, golden.output, "compiled engine diverged");
        rows.push(Fig8Row {
            model: "RTL-compiled",
            cycles_per_sec: cycles as f64 / wall.as_secs_f64().max(1e-12),
            wall,
            outputs: out.len(),
        });
    }

    rows
}

/// Result of the interpreted-vs-compiled engine sanity race.
#[derive(Clone, Copy, Debug)]
pub struct EngineCheck {
    /// Interpreter throughput, simulated cycles per wall second.
    pub interpreted_cps: f64,
    /// Compiled-engine throughput, simulated cycles per wall second.
    pub compiled_cps: f64,
}

impl EngineCheck {
    /// Compiled throughput over interpreted throughput.
    pub fn speedup(&self) -> f64 {
        self.compiled_cps / self.interpreted_cps.max(1e-12)
    }
}

/// Races the compiled levelized engine against the tree-walking
/// interpreter on the optimised RTL SRC (best of 3 each), asserting
/// bit-identical outputs. Used by `tables --check-engines` and
/// `scripts/verify.sh` to catch a compiled engine that has become slower
/// than the interpreter.
pub fn check_engines(cfg: &SrcConfig, n_inputs: usize) -> EngineCheck {
    let input = stimulus::sine(n_inputs, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(cfg, input.clone());
    let module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl module");
    let budget = scflow::flow::cycle_budget(golden.len());
    const REPS: usize = 3;

    let best = |mut run: Box<dyn FnMut() -> (Vec<i16>, u64)>| -> f64 {
        let mut top = f64::NEG_INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let (out, cycles) = run();
            let rate = cycles as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            assert_eq!(out, golden.output, "engine diverged from golden vectors");
            top = top.max(rate);
        }
        top
    };

    let interpreted_cps = best(Box::new(|| {
        run_handshake(&mut RtlSim::new(&module), &input, golden.len(), budget)
    }));
    let compiled_cps = best(Box::new(|| {
        let program = CompiledProgram::compile(&module).expect("rtl compiles");
        run_handshake(&mut program.simulator(), &input, golden.len(), budget)
    }));
    EngineCheck {
        interpreted_cps,
        compiled_cps,
    }
}

/// One bar pair of Figure 9.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// DUT artefact name.
    pub dut: &'static str,
    /// Testbench configuration.
    pub testbench: &'static str,
    /// Simulated clock cycles per wall second.
    pub cycles_per_sec: f64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Measures native-HDL vs SystemC-testbench co-simulation for the three
/// HDL artefacts of the flow.
pub fn measure_fig9(cfg: &SrcConfig, n_inputs: usize) -> Vec<Fig9Row> {
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(n_inputs, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(cfg, input);
    let budget = 10_000_000;

    let rtl_module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl");
    // The behavioural-flow artefact with the handshake interface the
    // testbenches drive (the optimised program, superstate-scheduled).
    let beh_module = {
        let mut opts = beh_options(BehVariant::Optimised);
        opts.mode = scflow_synth::beh::SchedulingMode::Superstate;
        synthesize_beh(&beh_program(cfg, BehVariant::Optimised), &opts)
            .expect("beh")
            .module
    };
    let gate_beh = synthesize(&beh_module, &lib, &SynthOptions::default())
        .expect("synth beh")
        .netlist;
    let gate_rtl = synthesize(&rtl_module, &lib, &SynthOptions::default())
        .expect("synth rtl")
        .netlist;

    // Best-of-3 per configuration: single runs are noise-dominated for
    // the short workloads the gate simulators allow.
    const REPS: usize = 3;
    let mut rows = Vec::new();
    let mut measure =
        |dut: &'static str, tb: &'static str, mut run: Box<dyn FnMut() -> u64>| {
            let mut best = f64::NEG_INFINITY;
            let mut cycles = 0;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let c = run();
                let rate = c as f64 / t0.elapsed().as_secs_f64().max(1e-12);
                if rate > best {
                    best = rate;
                    cycles = c;
                }
            }
            rows.push(Fig9Row {
                dut,
                testbench: tb,
                cycles_per_sec: best,
                cycles,
            });
        };

    // RTL artefact (interpreted RTL = the synthesis tool's Verilog).
    measure(
        "RTL",
        "VHDL-TB",
        Box::new(|| run_native_hdl(&mut RtlSim::new(&rtl_module), &golden, budget).cycles),
    );
    measure(
        "RTL",
        "SystemC-TB",
        Box::new(|| run_kernel_cosim(&mut RtlSim::new(&rtl_module), &golden, budget).cycles),
    );
    // Gate-level artefacts. Simulators are constructed once and reset per
    // iteration, so the timed region holds simulation only (construction
    // inside the closure used to fold netlist setup into the throughput).
    let mut gate_beh_event = GateSim::new(&gate_beh, &lib);
    measure(
        "Gate-BEH",
        "VHDL-TB",
        Box::new(|| {
            gate_beh_event.reset();
            run_native_hdl(&mut gate_beh_event, &golden, budget).cycles
        }),
    );
    let mut gate_beh_event = GateSim::new(&gate_beh, &lib);
    measure(
        "Gate-BEH",
        "SystemC-TB",
        Box::new(|| {
            gate_beh_event.reset();
            run_kernel_cosim(&mut gate_beh_event, &golden, budget).cycles
        }),
    );
    let mut gate_rtl_event = GateSim::new(&gate_rtl, &lib);
    measure(
        "Gate-RTL",
        "VHDL-TB",
        Box::new(|| {
            gate_rtl_event.reset();
            run_native_hdl(&mut gate_rtl_event, &golden, budget).cycles
        }),
    );
    let mut gate_rtl_event = GateSim::new(&gate_rtl, &lib);
    measure(
        "Gate-RTL",
        "SystemC-TB",
        Box::new(|| {
            gate_rtl_event.reset();
            run_kernel_cosim(&mut gate_rtl_event, &golden, budget).cycles
        }),
    );
    // The RTL artefact on the compiled levelized engine, appended after
    // the paper's six bars so Figure 9's original ordering is untouched.
    // The native-HDL row compiles the testbench too (the all-compiled
    // configuration); with only the DUT swapped the interpreted testbench
    // dominates the cycle and hides the engine.
    let rtl_program = CompiledProgram::compile(&rtl_module).expect("rtl compiles");
    measure(
        "RTL-comp",
        "VHDL-TB",
        Box::new(|| run_native_hdl_compiled(&mut rtl_program.simulator(), &golden, budget).cycles),
    );
    measure(
        "RTL-comp",
        "SystemC-TB",
        Box::new(|| run_kernel_cosim(&mut rtl_program.simulator(), &golden, budget).cycles),
    );
    // The gate-level RTL artefact on the two accelerated gate engines,
    // likewise appended after the paper's bars: the zero-delay levelized
    // fast mode and the compiled bit-parallel engine in single-pattern
    // mode. Same netlist, same testbenches, so the rows read directly
    // against the Gate-RTL bars above.
    let mut gate_rtl_fast = FastGateSim::new(&gate_rtl).expect("gate netlist levelizes");
    measure(
        "Gate-fast",
        "VHDL-TB",
        Box::new(|| {
            gate_rtl_fast.reset();
            run_native_hdl(&mut gate_rtl_fast, &golden, budget).cycles
        }),
    );
    let mut gate_rtl_fast = FastGateSim::new(&gate_rtl).expect("gate netlist levelizes");
    measure(
        "Gate-fast",
        "SystemC-TB",
        Box::new(|| {
            gate_rtl_fast.reset();
            run_kernel_cosim(&mut gate_rtl_fast, &golden, budget).cycles
        }),
    );
    let gate_rtl_prog = GateProgram::compile(&gate_rtl).expect("gate netlist compiles");
    let mut gate_rtl_bitpar = gate_rtl_prog.simulator();
    measure(
        "Gate-bitpar",
        "VHDL-TB",
        Box::new(|| {
            gate_rtl_bitpar.reset();
            run_native_hdl(&mut gate_rtl_bitpar, &golden, budget).cycles
        }),
    );
    let mut gate_rtl_bitpar = gate_rtl_prog.simulator();
    measure(
        "Gate-bitpar",
        "SystemC-TB",
        Box::new(|| {
            gate_rtl_bitpar.reset();
            run_kernel_cosim(&mut gate_rtl_bitpar, &golden, budget).cycles
        }),
    );
    rows
}

/// Result of the gate-engine sanity race plus the PPSFP fault-simulation
/// cross-check (`tables --check-gate`).
#[derive(Clone, Debug)]
pub struct GateEngineCheck {
    /// Event-driven engine throughput, simulated cycles per wall second.
    pub event_cps: f64,
    /// Levelized fast-mode throughput, simulated cycles per wall second.
    pub fast_cps: f64,
    /// Compiled bit-parallel engine throughput (single-pattern mode).
    pub bitpar_cps: f64,
    /// Wall time of serial per-fault coverage on the fault subset.
    pub fault_serial_wall: std::time::Duration,
    /// Wall time of PPSFP coverage on the same subset.
    pub fault_ppsfp_wall: std::time::Duration,
    /// Coverage on the subset (identical for both, asserted).
    pub coverage_pct: f64,
    /// Whether the PPSFP per-fault detection mask matched the serial one.
    pub coverage_matches: bool,
    /// Faults in the subset.
    pub faults: usize,
    /// Scan patterns applied.
    pub patterns: usize,
}

impl GateEngineCheck {
    /// Bit-parallel over event-driven cosimulation throughput.
    pub fn dut_speedup(&self) -> f64 {
        self.bitpar_cps / self.event_cps.max(1e-12)
    }

    /// Serial over PPSFP fault-simulation wall time.
    pub fn fault_speedup(&self) -> f64 {
        self.fault_serial_wall.as_secs_f64() / self.fault_ppsfp_wall.as_secs_f64().max(1e-12)
    }
}

/// Races the three gate-level engines on the synthesized RTL SRC (best of
/// 3 each, bit-identical outputs asserted), then cross-checks PPSFP fault
/// simulation against the serial per-fault reference on a fault subset.
/// Used by `tables --check-gate` and `scripts/verify.sh` to catch a
/// bit-parallel engine that is slower than the event-driven one or that
/// detects a different fault set.
pub fn check_gate_engines(cfg: &SrcConfig, n_inputs: usize) -> GateEngineCheck {
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(n_inputs, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(cfg, input);
    let budget = 10_000_000;
    let rtl_module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl");
    let gate_rtl = synthesize(&rtl_module, &lib, &SynthOptions::default())
        .expect("synth rtl")
        .netlist;
    const REPS: usize = 3;

    let best = |run: &mut dyn FnMut() -> CosimRun| -> f64 {
        let mut top = f64::NEG_INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let r = run();
            let rate = r.cycles as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            assert_eq!(r.outputs, golden.output, "gate engine diverged from golden");
            assert_eq!(r.testbench_errors, 0, "gate engine raised testbench errors");
            top = top.max(rate);
        }
        top
    };

    let mut event = GateSim::new(&gate_rtl, &lib);
    let event_cps = best(&mut || {
        event.reset();
        run_native_hdl(&mut event, &golden, budget)
    });
    let mut fast = FastGateSim::new(&gate_rtl).expect("gate netlist levelizes");
    let fast_cps = best(&mut || {
        fast.reset();
        run_native_hdl(&mut fast, &golden, budget)
    });
    let prog = GateProgram::compile(&gate_rtl).expect("gate netlist compiles");
    let mut bitpar = prog.simulator();
    let bitpar_cps = best(&mut || {
        bitpar.reset();
        run_native_hdl(&mut bitpar, &golden, budget)
    });

    // Fault-simulation cross-check: a strided fault subset keeps the
    // serial per-fault reference affordable while still exercising the
    // whole netlist depth.
    let all = fault::all_fault_sites(&gate_rtl);
    let stride = (all.len() / 24).max(1);
    let subset: Vec<_> = all.into_iter().step_by(stride).collect();
    let patterns = fault::random_patterns(&gate_rtl, 8, 0x5EED_CAFE);

    let t0 = Instant::now();
    let serial = fault::fault_coverage_serial(&gate_rtl, &lib, &subset, &patterns);
    let fault_serial_wall = t0.elapsed();
    let t0 = Instant::now();
    let ppsfp = fault::fault_coverage(&gate_rtl, &lib, &subset, &patterns);
    let fault_ppsfp_wall = t0.elapsed();

    GateEngineCheck {
        event_cps,
        fast_cps,
        bitpar_cps,
        fault_serial_wall,
        fault_ppsfp_wall,
        coverage_pct: ppsfp.coverage_pct(),
        coverage_matches: ppsfp.detected_mask == serial.detected_mask,
        faults: subset.len(),
        patterns: patterns.len(),
    }
}

/// One engine row of `tables --check-opt`: the same golden-model run
/// with the pass pipeline off and at level 2.
#[derive(Clone, Debug)]
pub struct OptCheckRow {
    /// Engine name.
    pub engine: &'static str,
    /// Throughput with passes off, simulated cycles per wall second.
    pub off_cps: f64,
    /// Throughput at pass level 2.
    pub on_cps: f64,
}

impl OptCheckRow {
    /// Passes-on over passes-off throughput.
    pub fn speedup(&self) -> f64 {
        self.on_cps / self.off_cps.max(1e-12)
    }
}

/// Re-runs the golden-model comparison on every compiled engine with
/// the pass pipeline off and at level 2. Both variants must reproduce
/// the golden outputs bit-for-bit (asserted), which pins the passes as
/// semantics-preserving on the flow's own design; the returned rows
/// carry the throughput pair per engine. Used by `tables --check-opt`
/// and `scripts/verify.sh`.
pub fn check_opt(cfg: &SrcConfig, n_inputs: usize) -> Vec<OptCheckRow> {
    let lib = CellLibrary::generic_025u();
    let passes = scflow_hwtypes::PassConfig::for_level(2);
    let input = stimulus::sine(n_inputs, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(cfg, input);
    let budget = 10_000_000;
    let module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl");
    let netlist = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synth rtl")
        .netlist;
    let opt_nl = scflow_gate::optimize(&netlist, &passes)
        .expect("gate passes run")
        .netlist;

    let mut rows: Vec<OptCheckRow> = Vec::new();
    let mut measure = |engine: &'static str, run: &mut dyn FnMut(bool) -> CosimRun| {
        let mut cps = [0.0f64; 2];
        for (i, on) in [false, true].into_iter().enumerate() {
            let t0 = Instant::now();
            let r = run(on);
            cps[i] = r.cycles as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            assert_eq!(
                r.outputs, golden.output,
                "{engine} (passes {}) diverged from golden",
                if on { "on" } else { "off" }
            );
            assert_eq!(r.testbench_errors, 0, "{engine} raised testbench errors");
        }
        rows.push(OptCheckRow {
            engine,
            off_cps: cps[0],
            on_cps: cps[1],
        });
    };

    let p0 = CompiledProgram::compile(&module).expect("rtl compiles");
    let p2 =
        CompiledProgram::compile_with(&module, &passes).expect("rtl compiles with passes");
    measure("rtl.compiled", &mut |on| {
        let mut sim = if on { p2.simulator() } else { p0.simulator() };
        run_native_hdl(&mut sim, &golden, budget)
    });
    measure("rtl.bitpar", &mut |on| {
        let mut sim = if on {
            p2.bit_simulator()
        } else {
            p0.bit_simulator()
        };
        run_native_hdl(&mut sim, &golden, budget)
    });
    measure("gate.fast", &mut |on| {
        let nl = if on { &opt_nl } else { &netlist };
        let mut sim = FastGateSim::new(nl).expect("levelizes");
        run_native_hdl(&mut sim, &golden, budget)
    });
    let g0 = GateProgram::compile(&netlist).expect("gate compiles");
    let g2 = GateProgram::compile(&opt_nl).expect("optimized gate compiles");
    measure("gate.bitpar", &mut |on| {
        let prog = if on { &g2 } else { &g0 };
        let mut sim = prog.simulator();
        run_native_hdl(&mut sim, &golden, budget)
    });
    measure("gate.partitioned", &mut |on| {
        let prog = if on { &g2 } else { &g0 };
        ParGateSim::with(prog, sim_threads(), 1, |sim| {
            run_native_hdl(sim, &golden, budget)
        })
    });
    rows
}

/// Netlist statistics rows for `tables --netlist-stats`: the
/// synthesized SRC netlist and a generated 10^4-gate pipeline, each
/// before and after the level-2 pass pipeline. The registry carries
/// the same numbers under stable `netlist.<design>.*` metric names.
pub fn netlist_stats(
    cfg: &SrcConfig,
) -> (
    Vec<(String, scflow_gate::NetlistStats)>,
    scflow_obs::MetricsRegistry,
) {
    let lib = CellLibrary::generic_025u();
    let passes = scflow_hwtypes::PassConfig::for_level(2);
    let module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl");
    let src_nl = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synth rtl")
        .netlist;
    let pipe_nl = scflow_gate::gen::generate(&scflow_gate::gen::GenParams::sized(
        scflow_gate::gen::GenKind::Pipeline,
        10_000,
        7,
    ));

    let mut rows = Vec::new();
    let mut reg = scflow_obs::MetricsRegistry::new();
    for (name, nl) in [("src", &src_nl), ("pipe10k", &pipe_nl)] {
        let opt = scflow_gate::optimize(nl, &passes).expect("passes run").netlist;
        for (variant, n) in [("", nl), (".opt2", &opt)] {
            let stats = scflow_gate::NetlistStats::compute(n).expect("stats");
            stats.register_into(&mut reg, &format!("netlist.{name}{variant}"));
            rows.push((format!("{name}{variant}"), stats));
        }
    }
    (rows, reg)
}

/// Regenerates the Figure 10 area table.
pub fn measure_fig10(cfg: &SrcConfig) -> scflow::flow::AreaFigure {
    let lib = CellLibrary::generic_025u();
    scflow::flow::run_area_flow(cfg, &lib).expect("area flow")
}

/// One row of an ablation table.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration description.
    pub config: String,
    /// Total cell area, µm².
    pub total_um2: f64,
    /// Flop count.
    pub flops: usize,
    /// FSM states.
    pub states: usize,
}

fn synth_beh_with(
    cfg: &SrcConfig,
    variant: BehVariant,
    tweak: impl FnOnce(&mut scflow_synth::beh::BehOptions),
) -> AblationRow {
    let lib = CellLibrary::generic_025u();
    let program = beh_program(cfg, variant);
    let mut opts = beh_options(variant);
    tweak(&mut opts);
    let out = synthesize_beh(&program, &opts).expect("beh synth");
    let res = synthesize(&out.module, &lib, &SynthOptions::default()).expect("rtl synth");
    AblationRow {
        config: String::new(),
        total_um2: res.area.total_um2(),
        flops: res.netlist.flop_count(),
        states: out.report.states,
    }
}

/// Ablation: superstate (handshake) vs fixed-cycle scheduling on the
/// optimised behavioural program.
pub fn ablation_scheduling(cfg: &SrcConfig) -> Vec<AblationRow> {
    use scflow_synth::beh::SchedulingMode;
    let mut a = synth_beh_with(cfg, BehVariant::Optimised, |o| {
        o.mode = SchedulingMode::Superstate;
    });
    a.config = "superstate (handshake)".into();
    let mut b = synth_beh_with(cfg, BehVariant::Optimised, |o| {
        o.mode = SchedulingMode::FixedCycle;
    });
    b.config = "fixed-cycle (strobes)".into();
    vec![a, b]
}

/// Ablation: register merging on/off on the *unoptimised* behavioural
/// program (the optimised one has too few live temporaries to merge).
pub fn ablation_register_merging(cfg: &SrcConfig) -> Vec<AblationRow> {
    let mut a = synth_beh_with(cfg, BehVariant::Unoptimised, |o| {
        o.merge_registers = false;
    });
    a.config = "one register per variable".into();
    let mut b = synth_beh_with(cfg, BehVariant::Unoptimised, |o| {
        o.merge_registers = true;
    });
    b.config = "lifetime-merged registers".into();
    vec![a, b]
}

/// Ablation: multiplier sharing on/off.
///
/// The SRC itself has a single MAC site, so sharing is near-neutral
/// there; this ablation uses a two-multiplier microprogram
/// (`e = x*x + y*y`) where the paper's "single arithmetic process
/// allowing resource sharing" genuinely pays off.
pub fn ablation_resource_sharing(_cfg: &SrcConfig) -> Vec<AblationRow> {
    use scflow_synth::beh::ProgramBuilder;
    let lib = CellLibrary::generic_025u();
    let program = {
        let mut p = ProgramBuilder::new("energy");
        let i = p.input("x", 16);
        let j = p.input("y", 16);
        let o = p.output("e", 33);
        let x = p.var("xv", 16);
        let y = p.var("yv", 16);
        let xx = p.var("xx", 32);
        let yy = p.var("yy", 32);
        p.read(x, i);
        p.read(y, j);
        let sx = p.v(x).sext(32).mul_signed(p.v(x).sext(32));
        p.assign(xx, sx);
        let sy = p.v(y).sext(32).mul_signed(p.v(y).sext(32));
        p.assign(yy, sy);
        let sum = p.v(xx).zext(33).add(p.v(yy).zext(33));
        p.write(o, sum);
        p.build()
    };
    let mut rows = Vec::new();
    for (share, label) in [(false, "one multiplier per site"), (true, "shared multiplier")] {
        let mut opts = beh_options(BehVariant::Optimised);
        opts.share_resources = share;
        let out = synthesize_beh(&program, &opts).expect("beh synth");
        let res = synthesize(&out.module, &lib, &SynthOptions::default()).expect("rtl synth");
        rows.push(AblationRow {
            config: label.into(),
            total_um2: res.area.total_um2(),
            flops: res.netlist.flop_count(),
            states: out.report.states,
        });
    }
    rows
}

/// Ablation: statement packing (chaining) on/off on the unoptimised
/// behavioural program — the conservative-schedule register bloat.
pub fn ablation_statement_packing(cfg: &SrcConfig) -> Vec<AblationRow> {
    let mut a = synth_beh_with(cfg, BehVariant::Unoptimised, |o| {
        o.pack_statements = false;
    });
    a.config = "one statement per step".into();
    let mut b = synth_beh_with(cfg, BehVariant::Unoptimised, |o| {
        o.pack_statements = true;
    });
    b.config = "packed steps (forwarding)".into();
    vec![a, b]
}

/// Timing closure of every synthesisable design against the 40 ns clock.
pub fn timing_table(cfg: &SrcConfig) -> Vec<(String, u64, bool)> {
    measure_fig10(cfg)
        .rows
        .into_iter()
        .map(|r| {
            (
                r.design,
                r.critical_path_ps,
                // setup margin mirrors TimingReport::meets
                r.critical_path_ps + 150 <= 40_000,
            )
        })
        .collect()
}

/// Toggle coverage of the fig8 stimulus across every simulation engine.
///
/// Produced by [`measure_coverage`]; the per-level maps are the byte
/// artifacts the engine-identity guarantee is checked against.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Per-net toggle map of the optimised RTL SRC, one line per net
    /// (identical on the interpreted and compiled engines, asserted).
    pub rtl_map: String,
    /// Per-cell-output toggle map of the synthesized netlist (identical
    /// on the event-driven, fast, bit-parallel and partitioned engines,
    /// asserted).
    pub gate_map: String,
    /// RTL toggle coverage, percent of net bits that both rose and fell.
    pub rtl_percent: f64,
    /// Gate-level toggle coverage, percent of cell outputs.
    pub gate_percent: f64,
    /// Whether every within-level map pair was byte-identical.
    pub maps_match: bool,
    /// Engine activity counters plus coverage aggregates, all
    /// deterministic (no wall-clock quantities).
    pub metrics: scflow_obs::MetricsRegistry,
}

/// Runs the fig8 stimulus through all six engines — interpreted and
/// compiled RTL on the optimised SRC, event-driven, fast, bit-parallel
/// and partitioned on its synthesized netlist — with toggle coverage
/// enabled, asserts bit accuracy against the golden model, and
/// cross-checks that the coverage maps within each level are
/// byte-identical (the engines sample settled values at the same cycle
/// boundaries, so any difference is an engine bug).
pub fn measure_coverage(cfg: &SrcConfig) -> CoverageReport {
    use scflow_sim_api::Simulation;
    let lib = CellLibrary::generic_025u();
    let input = stimulus::sine(150, 1000.0, f64::from(cfg.in_rate), 9000.0);
    let golden = GoldenVectors::generate(cfg, input);
    let budget = 10_000_000;
    let module = build_rtl_src(cfg, RtlVariant::Optimised).expect("rtl");
    let netlist = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synth rtl")
        .netlist;

    let mut reg = scflow_obs::MetricsRegistry::new();
    // Coverage aggregates register once per level (from the first
    // engine); per-engine activity counters register under their own
    // prefixes.
    let run_covered = |sim: &mut dyn Simulation,
                           prefix: &str,
                           cov_prefix: Option<&str>,
                           reg: &mut scflow_obs::MetricsRegistry|
     -> (String, f64) {
        assert!(sim.set_coverage(true), "{prefix}: no coverage support");
        let r = run_native_hdl(sim, &golden, budget);
        assert_eq!(r.outputs, golden.output, "{prefix}: diverged from golden");
        assert_eq!(r.testbench_errors, 0, "{prefix}: testbench errors");
        sim.stats().register_into(reg, prefix);
        let cov = sim.coverage().expect("coverage enabled");
        if let Some(p) = cov_prefix {
            cov.register_into(reg, p);
        }
        (cov.report(), cov.percent())
    };

    let mut interp = RtlSim::new(&module);
    let (rtl_map, rtl_percent) =
        run_covered(&mut interp, "rtl.interp", Some("coverage.toggle.rtl"), &mut reg);
    let prog = CompiledProgram::compile(&module).expect("rtl compiles");
    let mut compiled = prog.simulator();
    let (compiled_map, _) = run_covered(&mut compiled, "rtl.compiled", None, &mut reg);

    let mut event = GateSim::new(&netlist, &lib);
    let (gate_map, gate_percent) =
        run_covered(&mut event, "gate.event", Some("coverage.toggle.gate"), &mut reg);
    let mut fast = FastGateSim::new(&netlist).expect("gate netlist levelizes");
    let (fast_map, _) = run_covered(&mut fast, "gate.fast", None, &mut reg);
    let gprog = GateProgram::compile(&netlist).expect("gate netlist compiles");
    let mut bitpar = gprog.simulator();
    let (bitpar_map, _) = run_covered(&mut bitpar, "gate.bitpar", None, &mut reg);
    let (par_map, _) = ParGateSim::with(&gprog, sim_threads(), 1, |sim| {
        run_covered(sim, "gate.partitioned", None, &mut reg)
    });

    let maps_match = compiled_map == rtl_map
        && fast_map == gate_map
        && bitpar_map == gate_map
        && par_map == gate_map;
    CoverageReport {
        rtl_map,
        gate_map,
        rtl_percent,
        gate_percent,
        maps_match,
        metrics: reg,
    }
}

/// Everything the snapshot-determinism check compares: one artifact
/// dump per (engine, scenario) for the straight runs and the forked
/// replays. The two strings must be byte-identical — `verify.sh` also
/// `cmp`s the files the `tables --check-snapshot` mode writes.
#[derive(Clone, Debug)]
pub struct SnapshotCheck {
    /// Scenarios exercised per engine.
    pub scenarios: usize,
    /// Artifact dump of fresh per-scenario runs (warmup paid each time).
    pub straight: String,
    /// Artifact dump of snapshot-forked replays (warmup paid once).
    pub forked: String,
}

impl SnapshotCheck {
    /// `true` when the forked replays reproduced the straight runs
    /// byte-for-byte.
    pub fn matches(&self) -> bool {
        self.straight == self.forked
    }
}

/// Runs the snapshot-determinism check on both compiled RTL engines
/// (`rtl.compiled` scalar and `rtl.bitpar` 64-lane) over the buggy SRC
/// variant with address checking enabled, so the compared artifacts
/// include a live violation stream alongside outputs, cycle counts,
/// coverage maps, VCD waveforms and rendered metrics.
pub fn check_snapshot(cfg: &SrcConfig) -> SnapshotCheck {
    use scflow_hwtypes::Bv;
    use scflow_sim_api::{Simulation, StimulusBatch, StimulusItem};

    const SCENARIOS: u64 = 5;
    let batches: Vec<StimulusBatch> = (0..SCENARIOS)
        .map(|i| StimulusBatch {
            items: vec![StimulusItem {
                pokes: vec![
                    ("in_sample".to_owned(), Bv::new((i * 0x0777) & 0xffff, 16)),
                    ("in_sample_valid".to_owned(), Bv::bit(true)),
                    ("out_sample_ready".to_owned(), Bv::bit(true)),
                ],
                cycles: 6,
            }],
            read: vec!["out_sample".to_owned(), "dbg_state".to_owned()],
        })
        .collect();

    fn prep(sim: &mut (impl Simulation + ?Sized)) {
        sim.set_coverage(true);
        sim.watch("out_sample");
        sim.watch("dbg_state");
        sim.poke("in_sample", Bv::new(0x0421, 16));
        sim.poke("in_sample_valid", Bv::bit(true));
        sim.poke("out_sample_ready", Bv::bit(true));
        sim.run_cycles(40);
    }

    fn dump(
        out: &mut String,
        engine: &str,
        scenario: usize,
        sim: &(impl Simulation + ?Sized),
        violations: &str,
        reply_outputs: &[Vec<(String, Bv)>],
    ) {
        use std::fmt::Write as _;
        writeln!(out, "== {engine} scenario {scenario} ==").unwrap();
        for item in reply_outputs {
            for (port, v) in item {
                writeln!(out, "out {port} = {v:?}").unwrap();
            }
        }
        writeln!(out, "cycle {}", sim.cycle()).unwrap();
        writeln!(out, "violations {violations}").unwrap();
        writeln!(out, "coverage\n{}", sim.coverage().expect("coverage").report()).unwrap();
        writeln!(out, "vcd\n{}", sim.trace(40_000).expect("vcd")).unwrap();
        let metrics = sim.metrics().expect("metrics");
        writeln!(out, "metrics\n{}", scflow_obs::render_metrics_json(&metrics, None)).unwrap();
    }

    let module = build_rtl_src(cfg, RtlVariant::OptimisedBuggy).expect("rtl buggy builds");
    let program = CompiledProgram::compile(&module).expect("compiles");

    let mut straight = String::new();
    let mut forked = String::new();
    for engine in ["rtl.compiled", "rtl.bitpar"] {
        // One closure per engine flavour keeps the generic sims' types
        // concrete; both flavours run the same straight/forked split.
        macro_rules! run_engine {
            ($mk:expr) => {{
                for (i, batch) in batches.iter().enumerate() {
                    let mut sim = $mk;
                    sim.check_addresses = true;
                    prep(&mut sim);
                    let reply = sim.step_batch(batch).expect("scenario");
                    let v = format!("{:?}", sim.violations());
                    dump(&mut straight, engine, i, &sim, &v, &reply.outputs);
                }
                let mut sim = $mk;
                sim.check_addresses = true;
                prep(&mut sim);
                let snap = Simulation::snapshot(&sim).expect("snapshot");
                for (i, batch) in batches.iter().enumerate() {
                    assert!(sim.restore(&snap), "restore");
                    let reply = sim.step_batch(batch).expect("scenario");
                    let v = format!("{:?}", sim.violations());
                    dump(&mut forked, engine, i, &sim, &v, &reply.outputs);
                }
            }};
        }
        match engine {
            "rtl.compiled" => run_engine!(program.simulator()),
            _ => run_engine!(program.bit_simulator()),
        }
    }

    SnapshotCheck {
        scenarios: SCENARIOS as usize,
        straight,
        forked,
    }
}

/// Renders a registry (plus an optional profile) with
/// [`scflow_obs::render_metrics_json`] and writes it as `METRICS.json`
/// via [`bench_output_path`]. Returns the path written.
pub fn write_metrics_json(
    reg: &scflow_obs::MetricsRegistry,
    profile: Option<&scflow_obs::Profiler>,
) -> std::path::PathBuf {
    let path = bench_output_path("METRICS.json");
    std::fs::write(&path, scflow_obs::render_metrics_json(reg, profile))
        .expect("write METRICS.json");
    path
}

/// Where the benchmark JSON artefacts (`BENCH_fig8.json`, …) land:
/// `$SCFLOW_BENCH_DIR` when set, otherwise the workspace root.
pub fn bench_output_path(file: &str) -> std::path::PathBuf {
    match std::env::var_os("SCFLOW_BENCH_DIR") {
        Some(d) => std::path::PathBuf::from(d).join(file),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join(file),
    }
}
