//! The content-addressed compiled-design cache.
//!
//! Compiling a design — levelizing RTL into bytecode, or synthesizing
//! to gates and levelizing the netlist — costs orders of magnitude more
//! than any single protocol request. The cache makes that cost a
//! once-per-design event: artefacts are keyed by a stable content hash
//! of their source ([`Module::stable_hash`](scflow_rtl::Module) /
//! [`GateNetlist::stable_hash`](scflow_gate::GateNetlist)), so any
//! number of concurrent sessions opening the same design share one
//! read-only [`Arc`]'d program.
//!
//! Two properties the tests pin:
//!
//! * **single-flight** — when N sessions race to open an uncached
//!   design, exactly one compiles ([`CacheStats::compiles`] counts
//!   actual compile executions); the rest block on a condvar until the
//!   artefact is ready and then share it,
//! * **LRU eviction** — beyond [`capacity`](CompileCache::capacity)
//!   entries, the least-recently-used artefact *not held by any live
//!   session* is dropped. Entries pinned by sessions are never evicted
//!   (the session's `Arc` keeps the program alive anyway; evicting the
//!   cache slot would only force a pointless recompile), so the cache
//!   can transiently exceed its capacity while everything is in use.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use scflow_gate::GateProgram;
use scflow_rtl::CompiledProgram;

/// A cached compiled artefact: one per (design content, level) pair.
#[derive(Debug)]
pub enum Artifact {
    /// Compiled levelized RTL bytecode (serves `rtl.compiled`).
    Rtl(CompiledProgram),
    /// Synthesized, levelized gate program (serves every gate engine:
    /// `gate.bitpar` executes it directly, `gate.event` and `gate.fast`
    /// run its owned netlist).
    Gate(GateProgram),
}

impl Artifact {
    /// The RTL program, if this is an RTL artefact.
    pub fn rtl(&self) -> Option<&CompiledProgram> {
        match self {
            Artifact::Rtl(p) => Some(p),
            Artifact::Gate(_) => None,
        }
    }

    /// The gate program, if this is a gate artefact.
    pub fn gate(&self) -> Option<&GateProgram> {
        match self {
            Artifact::Gate(p) => Some(p),
            Artifact::Rtl(_) => None,
        }
    }
}

/// Cache effectiveness counters (monotonic over the cache's lifetime).
///
/// A waiter that blocks on an in-flight compile and then shares its
/// result counts as a *hit*: it paid no compile. So for an N-session
/// storm on one cold design the totals are deterministically
/// `misses == 1`, `compiles == 1`, `hits == N - 1`, independent of how
/// the threads interleave.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready (or in-flight) artefact.
    pub hits: u64,
    /// Lookups that found nothing and triggered a compile.
    pub misses: u64,
    /// Compile executions actually run (== misses unless a compile
    /// failed and was retried).
    pub compiles: u64,
    /// Ready artefacts dropped by LRU eviction.
    pub evictions: u64,
}

enum Slot {
    /// A compile for this key is in flight on some session's thread.
    Building,
    /// Ready to share.
    Ready { art: Arc<Artifact>, last_used: u64 },
}

struct Inner {
    slots: HashMap<u64, Slot>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    stats: CacheStats,
}

/// The shared compile cache (see the module docs for the contract).
pub struct CompileCache {
    cap: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl CompileCache {
    /// A cache holding up to `capacity` unpinned artefacts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            cap: capacity.max(1),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Ready artefacts currently held.
    pub fn len(&self) -> usize {
        let g = self.inner.lock().expect("cache lock");
        g.slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// `true` when no ready artefact is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Looks up `key`, compiling via `build` on a miss. Returns the
    /// shared artefact and whether this call was a hit (a waiter that
    /// shared an in-flight compile counts as a hit). Only one thread
    /// ever runs `build` for a given key at a time; concurrent callers
    /// block until the artefact is ready.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error (a panicking `build` is reported as
    /// an error too, and the in-flight slot is released so waiters
    /// retry rather than hang).
    pub fn get_or_compile(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<Artifact, String>,
    ) -> Result<(Arc<Artifact>, bool), String> {
        let mut g = self.inner.lock().expect("cache lock");
        loop {
            let tick = g.tick + 1;
            match g.slots.get_mut(&key) {
                Some(Slot::Ready { art, last_used }) => {
                    *last_used = tick;
                    let art = art.clone();
                    g.tick = tick;
                    g.stats.hits += 1;
                    return Ok((art, true));
                }
                Some(Slot::Building) => {
                    g = self.ready.wait(g).expect("cache lock");
                }
                None => break,
            }
        }
        g.slots.insert(key, Slot::Building);
        g.stats.misses += 1;
        g.stats.compiles += 1;
        drop(g);

        // Compile outside the lock so other keys proceed concurrently.
        // The engines are all safe code, but a build panic must not
        // leave waiters stuck on a Building slot forever.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build))
            .unwrap_or_else(|p| Err(format!("compile panicked: {}", panic_message(&*p))));

        let mut g = self.inner.lock().expect("cache lock");
        match built {
            Ok(art) => {
                let art = Arc::new(art);
                g.tick += 1;
                let t = g.tick;
                g.slots.insert(
                    key,
                    Slot::Ready {
                        art: art.clone(),
                        last_used: t,
                    },
                );
                Self::evict_locked(self.cap, &mut g);
                self.ready.notify_all();
                Ok((art, false))
            }
            Err(e) => {
                g.slots.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Drops least-recently-used unpinned artefacts until at most `cap`
    /// ready entries remain (or everything left is pinned).
    fn evict_locked(cap: usize, g: &mut Inner) {
        loop {
            let ready = g
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= cap {
                return;
            }
            // Unpinned == only the cache's own Arc is left.
            let victim = g
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { art, last_used } if Arc::strong_count(art) == 1 => {
                        Some((*k, *last_used))
                    }
                    _ => None,
                })
                .min_by_key(|&(_, t)| t)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    g.slots.remove(&k);
                    g.stats.evictions += 1;
                }
                None => return, // all pinned: soft cap
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scflow_gate::{CellKind, GateProgram, NetlistBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_artifact(tag: u64) -> Artifact {
        let mut b = NetlistBuilder::new(format!("tiny{tag}"));
        let a = b.input_port("a", 1)[0];
        let x = b.input_port("b", 1)[0];
        let y = b.cell(CellKind::And2, &[a, x]);
        b.output_port("y", &[y]);
        Artifact::Gate(GateProgram::compile(&b.build()).unwrap())
    }

    #[test]
    fn storm_compiles_exactly_once() {
        let cache = CompileCache::new(4);
        let compiles = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (art, _) = cache
                        .get_or_compile(42, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            Ok(tiny_artifact(0))
                        })
                        .unwrap();
                    assert!(art.gate().is_some());
                });
            }
        });
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        let st = cache.stats();
        assert_eq!(st.compiles, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, 7);
    }

    #[test]
    fn lru_evicts_unpinned_only() {
        let cache = CompileCache::new(2);
        let (pinned, _) = cache.get_or_compile(1, || Ok(tiny_artifact(1))).unwrap();
        for k in 2..5 {
            let (art, hit) = cache.get_or_compile(k, || Ok(tiny_artifact(k))).unwrap();
            assert!(!hit);
            drop(art);
        }
        // Key 1 is pinned by `pinned`; 2 and 3 were evictable.
        assert!(cache.stats().evictions >= 2);
        let (again, hit) = cache.get_or_compile(1, || panic!("evicted the pinned entry")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&pinned, &again));
        // Evicted keys recompile.
        let (_, hit) = cache.get_or_compile(2, || Ok(tiny_artifact(2))).unwrap();
        assert!(!hit);
    }

    #[test]
    fn failed_build_releases_the_slot() {
        let cache = CompileCache::new(2);
        let err = cache
            .get_or_compile(9, || Err("no such design".to_owned()))
            .unwrap_err();
        assert!(err.contains("no such design"));
        // The slot is free again: a retry compiles.
        let (_, hit) = cache.get_or_compile(9, || Ok(tiny_artifact(9))).unwrap();
        assert!(!hit);
        assert_eq!(cache.stats().compiles, 2);
    }

    #[test]
    fn panicking_build_is_an_error_not_a_hang() {
        let cache = CompileCache::new(2);
        let err = cache
            .get_or_compile(7, || panic!("boom"))
            .unwrap_err();
        assert!(err.contains("boom"));
        assert_eq!(cache.len(), 0);
    }
}
