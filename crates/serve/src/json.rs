//! A minimal JSON value type with a hand-rolled parser and renderer.
//!
//! The wire protocol is JSON lines, but the workspace is dependency-free
//! by design, so — like the `METRICS.json` renderer in scflow-obs — the
//! service carries its own ~200-line JSON layer instead of serde. Two
//! deliberate restrictions keep it small and the protocol deterministic:
//!
//! * numbers are signed 64-bit integers only (port *values* travel as
//!   hex strings anyway, because a 64-bit value does not survive JSON's
//!   2^53 float-safe integer range),
//! * objects preserve insertion order, so a reply always renders its
//!   keys in the order the server wrote them — which is what lets the
//!   verify script pin golden reply bytes with `cmp`.

use std::fmt::Write as _;

/// A JSON value (integers only; objects keep insertion order).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed 64-bit integer (floats are rejected on parse).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced verbatim into the output (used to embed
    /// a `MetricsRegistry::to_json_object` document without reparsing).
    Raw(String),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace), matching the wire
    /// format: one reply, one line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an object from `(key, value)` pairs in order.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A short human-readable message pointing at what failed.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_word(&mut self, w: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_word("true", Json::Bool(true)),
            Some(b'f') => self.eat_word("false", Json::Bool(false)),
            Some(b'n') => self.eat_word("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "short \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_owned())?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at offset {start} (the protocol is integer-only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Num)
            .map_err(|_| format!("number out of i64 range at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"id":1,"op":"poke","value":"0x2a","deep":[true,null,{"k":-3}]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("op").unwrap().as_str(), Some("poke"));
        assert_eq!(v.get("id").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_floats_and_trailing() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = obj([("z", Json::Num(1)), ("a", Json::Num(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = obj([("metrics", Json::Raw("{\"x\": 3}".into()))]);
        assert_eq!(v.render(), r#"{"metrics":{"x": 3}}"#);
    }
}
