//! The `scflow-serve` binary: JSON-lines simulation service over stdio
//! (default) or TCP.
//!
//! ```text
//! scflow-serve              # serve stdin/stdout (or SCFLOW_SERVE_ADDR)
//! scflow-serve --stdio      # force stdio even when SCFLOW_SERVE_ADDR is set
//! scflow-serve --addr HOST:PORT
//! ```
//!
//! Knobs (see `ServeOptions::from_env`): `SCFLOW_SERVE_ADDR`,
//! `SCFLOW_SERVE_THREADS`, `SCFLOW_CACHE_CAP`. Diagnostics go to
//! stderr; stdout carries only protocol replies.

use scflow::prelude::ServeOptions;
use scflow_serve::Server;

fn main() {
    let mut opts = ServeOptions::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => opts.addr = None,
            "--addr" => match args.next() {
                Some(a) => opts.addr = Some(a),
                None => {
                    eprintln!("scflow-serve: --addr needs HOST:PORT");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: scflow-serve [--stdio | --addr HOST:PORT]");
                return;
            }
            other => {
                eprintln!("scflow-serve: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let server = Server::new(&opts);
    let result = match opts.addr.as_deref() {
        Some(addr) => {
            eprintln!(
                "scflow-serve: listening on {addr} ({} workers, cache cap {})",
                opts.threads, opts.cache_cap
            );
            server.serve_tcp(addr)
        }
        None => server.serve_stdio(),
    };
    if let Err(e) = result {
        eprintln!("scflow-serve: transport error: {e}");
        std::process::exit(1);
    }
}
