//! `scflow-serve`: a concurrent simulation service over the flow's
//! engines.
//!
//! The service speaks a JSON-lines protocol (one request object per
//! line, one reply object per line — see `DESIGN.md` for the grammar)
//! over stdin/stdout or TCP. Each open session owns one deterministic
//! simulation engine on a dedicated worker thread; compiled designs are
//! shared across sessions through a content-addressed cache, so the
//! compile cost of a design is paid once no matter how many sessions
//! open it. Batched stimulus (`step_batch`) goes through the
//! [`Simulation`](scflow_sim_api::Simulation) trait's batch API:
//! every engine runs sequential batches, and the bit-parallel engines
//! (`gate.bitpar`, `rtl.bitpar`) additionally accept lanes-mode
//! batches driving up to 64 independent stimulus tuples through one
//! engine pass. Snapshot-capable engines (`rtl.compiled`,
//! `rtl.bitpar`, `gate.bitpar`) expose `snapshot`/`restore` requests
//! so a client can fork a warmed-up state across scenario sweeps.
//!
//! Determinism contract: a session's replies depend only on its own
//! request sequence. Concurrent sessions on the same design produce
//! byte-identical outputs, coverage maps and (deterministic-mode)
//! metrics to a serial single-session run — the integration tests pin
//! this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod designs;
pub mod json;
pub mod session;

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use scflow::prelude::ServeOptions;
use scflow_hwtypes::Bv;
use scflow_obs::{Histogram, MetricValue, MetricsRegistry};
use scflow_sim_api::{SimError, Snapshot, StimulusBatch, StimulusItem};

use cache::CompileCache;
use json::{obj, Json};
use session::{Req, Resp, SessionMgr};

/// Protocol version reported by `ping`. Additive changes (new ops, new
/// optional fields) keep the version; anything that changes the meaning
/// or type of an existing field bumps it.
pub const PROTOCOL_VERSION: i64 = 1;

/// The server: session table, compile cache and request counters. All
/// methods take `&self`, so one server can be driven from many
/// connection threads at once.
pub struct Server {
    mgr: SessionMgr,
    cache: Arc<CompileCache>,
    shutdown: AtomicBool,
    /// Per-op wall-clock handling latency in microseconds. Wall clock is
    /// inherently nondeterministic, so these histograms are only
    /// exported by `server_metrics` when `deterministic` is false.
    latency: Mutex<BTreeMap<String, Histogram>>,
    requests: scflow_obs::Counter,
    errors: scflow_obs::Counter,
}

impl Server {
    /// A server configured by `opts`.
    pub fn new(opts: &ServeOptions) -> Self {
        let cache = Arc::new(CompileCache::new(opts.cache_cap));
        Server {
            mgr: SessionMgr::new(opts, cache.clone()),
            cache,
            shutdown: AtomicBool::new(false),
            latency: Mutex::new(BTreeMap::new()),
            requests: scflow_obs::Counter::new(),
            errors: scflow_obs::Counter::new(),
        }
    }

    /// The shared compile cache (tests assert on its counters).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// The session manager.
    pub fn sessions(&self) -> &SessionMgr {
        &self.mgr
    }

    /// `true` once a `shutdown` request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request line and returns the reply line (without the
    /// trailing newline). Never panics: malformed input becomes an
    /// `ok:false` reply, and engine panics are caught at the session
    /// boundary.
    pub fn handle_line(&self, line: &str) -> String {
        let start = Instant::now();
        self.requests.inc();
        let (reply, op) = self.dispatch(line);
        let op = op.unwrap_or_else(|| "invalid".to_owned());
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.latency
            .lock()
            .expect("latency table")
            .entry(op)
            .or_default()
            .record(micros);
        reply.render()
    }

    fn dispatch(&self, line: &str) -> (Json, Option<String>) {
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return (self.err(Json::Num(0), "bad_json", &e), None);
            }
        };
        let id = req.get("id").cloned().unwrap_or(Json::Num(0));
        let Some(op) = req.get("op").and_then(Json::as_str).map(str::to_owned) else {
            return (
                self.err(id, "bad_request", "missing string field `op`"),
                None,
            );
        };
        let reply = match op.as_str() {
            "ping" => ok(
                id,
                [
                    ("server", Json::Str("scflow-serve".into())),
                    ("protocol", Json::Num(PROTOCOL_VERSION)),
                ],
            ),
            "open_session" => self.op_open(id, &req),
            "poke" => self.op_poke(id, &req),
            "peek" => self.op_session_simple(id, &req, |port| Req::Peek(port)),
            "step" => self.op_step(id, &req),
            "settle" => self.op_no_arg(id, &req, Req::Settle),
            "step_batch" => self.op_step_batch(id, &req),
            "snapshot" => self.op_no_arg(id, &req, Req::Snapshot),
            "restore" => self.op_restore(id, &req),
            "coverage" => self.op_no_arg(id, &req, Req::Coverage),
            "metrics" => self.op_no_arg(id, &req, Req::Metrics),
            "reset" => self.op_no_arg(id, &req, Req::Reset),
            "close" => self.op_close(id, &req),
            "server_metrics" => self.op_server_metrics(id, &req),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                ok(id, [("closing", Json::Bool(true))])
            }
            _ => self.err(id, "unknown_op", &format!("unknown op `{op}`")),
        };
        (reply, Some(op))
    }

    fn err(&self, id: Json, code: &str, msg: &str) -> Json {
        self.errors.inc();
        obj([
            ("id", id),
            ("ok", Json::Bool(false)),
            (
                "error",
                obj([
                    ("code", Json::Str(code.to_owned())),
                    ("msg", Json::Str(msg.to_owned())),
                ]),
            ),
        ])
    }

    fn op_open(&self, id: Json, req: &Json) -> Json {
        let Some(design) = req.get("design").and_then(Json::as_str) else {
            return self.err(id, "bad_request", "missing string field `design`");
        };
        let Some(engine) = req.get("engine").and_then(Json::as_str) else {
            return self.err(id, "bad_request", "missing string field `engine`");
        };
        let coverage = req
            .get("coverage")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        // Optional pass level (0..=2). Absent, the server-wide
        // `SCFLOW_OPT` knob decides; present, the request wins — so
        // concurrent sessions can run the same design at different
        // levels without touching the environment.
        let passes = match req.get("opt").and_then(Json::as_i64) {
            Some(l) if (0..=2).contains(&l) => {
                scflow_hwtypes::PassConfig::for_level(l as u8)
            }
            Some(_) => {
                return self.err(id, "bad_request", "field `opt` must be 0, 1 or 2");
            }
            None => scflow_hwtypes::PassConfig::from_env(),
        };
        match self.mgr.open(design, engine, coverage, &passes) {
            Ok((sid, outcome, content_hash)) => ok(
                id,
                [
                    ("session", Json::Str(sid)),
                    ("design", Json::Str(design.to_owned())),
                    ("engine", Json::Str(engine.to_owned())),
                    ("cache", Json::Str(outcome.as_str().to_owned())),
                    ("content_hash", Json::Str(format!("0x{content_hash:016x}"))),
                ],
            ),
            Err((code, msg)) => self.err(id, code, &msg),
        }
    }

    fn session_id<'r>(&self, req: &'r Json) -> Result<&'r str, &'static str> {
        req.get("session")
            .and_then(Json::as_str)
            .ok_or("missing string field `session`")
    }

    fn op_poke(&self, id: Json, req: &Json) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        let Some(port) = req.get("port").and_then(Json::as_str) else {
            return self.err(id, "bad_request", "missing string field `port`");
        };
        let value = match parse_value(req.get("value"), req.get("width")) {
            Ok(v) => v,
            Err(m) => return self.err(id, "bad_value", &m),
        };
        self.finish(id, self.mgr.request(sid, Req::Poke(port.to_owned(), value)))
    }

    fn op_session_simple(&self, id: Json, req: &Json, mk: impl FnOnce(String) -> Req) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        let Some(port) = req.get("port").and_then(Json::as_str) else {
            return self.err(id, "bad_request", "missing string field `port`");
        };
        self.finish(id, self.mgr.request(sid, mk(port.to_owned())))
    }

    fn op_step(&self, id: Json, req: &Json) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        let cycles = match req.get("cycles") {
            None => 1,
            Some(Json::Num(n)) if *n >= 0 => *n as u64,
            Some(_) => {
                return self.err(id, "bad_request", "`cycles` must be a non-negative integer");
            }
        };
        self.finish(id, self.mgr.request(sid, Req::Step(cycles)))
    }

    fn op_no_arg(&self, id: Json, req: &Json, r: Req) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        self.finish(id, self.mgr.request(sid, r))
    }

    fn op_close(&self, id: Json, req: &Json) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s.to_owned(),
            Err(m) => return self.err(id, "bad_request", m),
        };
        match self.mgr.request(&sid, Req::Close) {
            Resp::Done => ok(id, [("closed", Json::Str(sid))]),
            other => self.finish(id, other),
        }
    }

    fn op_step_batch(&self, id: Json, req: &Json) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        let Some(raw_items) = req.get("items").and_then(Json::as_arr) else {
            return self.err(id, "bad_request", "missing array field `items`");
        };
        let mut items = Vec::with_capacity(raw_items.len());
        for (i, it) in raw_items.iter().enumerate() {
            let cycles = match it.get("cycles") {
                None => 1,
                Some(Json::Num(n)) if *n >= 0 => *n as u64,
                _ => {
                    return self.err(
                        id,
                        "bad_request",
                        &format!("item {i}: `cycles` must be a non-negative integer"),
                    );
                }
            };
            let mut pokes = Vec::new();
            if let Some(raw_pokes) = it.get("pokes") {
                let Some(raw_pokes) = raw_pokes.as_arr() else {
                    return self.err(
                        id,
                        "bad_request",
                        &format!("item {i}: `pokes` must be an array"),
                    );
                };
                for p in raw_pokes {
                    let Some(port) = p.get("port").and_then(Json::as_str) else {
                        return self.err(
                            id,
                            "bad_request",
                            &format!("item {i}: poke missing `port`"),
                        );
                    };
                    match parse_value(p.get("value"), p.get("width")) {
                        Ok(v) => pokes.push((port.to_owned(), v)),
                        Err(m) => {
                            return self.err(id, "bad_value", &format!("item {i}: {m}"));
                        }
                    }
                }
            }
            items.push(StimulusItem { pokes, cycles });
        }
        let read: Vec<String> = match req.get("read") {
            None => Vec::new(),
            Some(Json::Arr(ports)) => {
                let mut out = Vec::with_capacity(ports.len());
                for p in ports {
                    match p.as_str() {
                        Some(s) => out.push(s.to_owned()),
                        None => {
                            return self.err(id, "bad_request", "`read` must hold strings");
                        }
                    }
                }
                out
            }
            Some(_) => return self.err(id, "bad_request", "`read` must be an array"),
        };
        let lanes = match req.get("mode").and_then(Json::as_str) {
            None | Some("sequential") => false,
            Some("lanes") => true,
            Some(m) => {
                return self.err(
                    id,
                    "bad_request",
                    &format!("unknown batch mode `{m}` (sequential|lanes)"),
                );
            }
        };
        let batch = StimulusBatch { items, read };
        self.finish(id, self.mgr.request(sid, Req::StepBatch { batch, lanes }))
    }

    fn op_restore(&self, id: Json, req: &Json) -> Json {
        let sid = match self.session_id(req) {
            Ok(s) => s,
            Err(m) => return self.err(id, "bad_request", m),
        };
        let Some(hex) = req.get("snapshot").and_then(Json::as_str) else {
            return self.err(id, "bad_request", "missing string field `snapshot`");
        };
        let blob = match blob_from_hex(hex) {
            Ok(b) => b,
            Err(m) => return self.err(id, "bad_value", &m),
        };
        self.finish(
            id,
            self.mgr.request(sid, Req::Restore(Snapshot::from_blob(blob))),
        )
    }

    fn op_server_metrics(&self, id: Json, req: &Json) -> Json {
        let deterministic = req
            .get("deterministic")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let mut reg = MetricsRegistry::new();
        let cs = self.cache.stats();
        reg.set_counter("serve.cache.hits", cs.hits);
        reg.set_counter("serve.cache.misses", cs.misses);
        reg.set_counter("serve.cache.compiles", cs.compiles);
        reg.set_counter("serve.cache.evictions", cs.evictions);
        reg.set_counter("serve.cache.entries", self.cache.len() as u64);
        let sc = &self.mgr.counters;
        reg.set_counter("serve.sessions.opened", sc.opened.load(Ordering::Relaxed));
        reg.set_counter("serve.sessions.closed", sc.closed.load(Ordering::Relaxed));
        reg.set_counter(
            "serve.sessions.busy_rejections",
            sc.busy_rejections.load(Ordering::Relaxed),
        );
        reg.set_gauge("serve.sessions.active", self.mgr.active() as i64);
        if !deterministic {
            // Wall-clock latency never enters the deterministic view.
            reg.set_counter("serve.requests.total", self.requests.get());
            reg.set_counter("serve.requests.errors", self.errors.get());
            for (op, h) in self.latency.lock().expect("latency table").iter() {
                reg.merge_histogram(&format!("serve.latency.{op}.us"), h);
            }
        }
        ok(id, [("metrics", registry_to_json(&reg))])
    }

    fn finish(&self, id: Json, resp: Resp) -> Json {
        match resp {
            Resp::Done => ok(id, []),
            Resp::Value(v) => ok(id, value_fields(&v)),
            Resp::Cycles(c) => ok(id, [("cycles", num_u64(c))]),
            Resp::Batch { outputs, cycles } => {
                let items: Vec<Json> = outputs
                    .into_iter()
                    .map(|reads| {
                        Json::Obj(vec![(
                            "outputs".to_owned(),
                            Json::Arr(
                                reads
                                    .into_iter()
                                    .map(|(port, v)| {
                                        let mut fields =
                                            vec![("port".to_owned(), Json::Str(port))];
                                        for (k, j) in value_fields(&v) {
                                            fields.push((k.to_owned(), j));
                                        }
                                        Json::Obj(fields)
                                    })
                                    .collect(),
                            ),
                        )])
                    })
                    .collect();
                ok(
                    id,
                    [("items", Json::Arr(items)), ("cycles", num_u64(cycles))],
                )
            }
            Resp::Coverage {
                covered_bits,
                total_bits,
                flips,
                samples,
                summary,
                report,
            } => ok(
                id,
                [
                    ("covered_bits", num_u64(covered_bits)),
                    ("total_bits", num_u64(total_bits)),
                    ("flips", num_u64(flips)),
                    ("samples", num_u64(samples)),
                    ("summary", Json::Str(summary)),
                    ("report", Json::Str(report)),
                ],
            ),
            Resp::Snapshot(snap) => ok(id, [("snapshot", Json::Str(blob_to_hex(snap.blob())))]),
            Resp::Metrics(Some(reg)) => ok(id, [("metrics", registry_to_json(&reg))]),
            Resp::Metrics(None) => {
                self.err(id, "unsupported_op", "this engine exports no metrics")
            }
            Resp::Sim(e) => {
                let code = match &e {
                    SimError::UnknownPort(_) => "unknown_port",
                    SimError::NotAnInput(_) => "not_an_input",
                    SimError::NotAnOutput(_) => "not_an_output",
                    SimError::WidthMismatch { .. } => "width_mismatch",
                };
                self.err(id, code, &e.to_string())
            }
            Resp::Failed(code, msg) => self.err(id, code, &msg),
        }
    }

    /// Serves the JSON-lines protocol over `input`/`output` until EOF
    /// or a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the transport.
    pub fn serve_io(
        &self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = self.handle_line(&line);
            output.write_all(reply.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if self.shutting_down() {
                break;
            }
        }
        Ok(())
    }

    /// Serves over stdin/stdout (the default transport).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the standard streams.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve_io(stdin.lock(), stdout.lock())
    }

    /// Binds `addr` and serves each TCP connection on its own thread;
    /// sessions and the compile cache are shared server-wide. Returns
    /// when a `shutdown` request arrives on any connection.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors.
    pub fn serve_tcp(&self, addr: &str) -> std::io::Result<()> {
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            loop {
                if self.shutting_down() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        scope.spawn(move || {
                            let reader = std::io::BufReader::new(
                                stream.try_clone().expect("clone stream"),
                            );
                            let _ = self.serve_io(reader, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }
}

fn ok<const N: usize>(id: Json, fields: [(&str, Json); N]) -> Json {
    let mut all = vec![("id".to_owned(), id), ("ok".to_owned(), Json::Bool(true))];
    for (k, v) in fields {
        all.push((k.to_owned(), v));
    }
    Json::Obj(all)
}

fn num_u64(v: u64) -> Json {
    // Counts that fit JSON integers stay numeric; anything wider would
    // have to travel as a hex string like port values do.
    i64::try_from(v).map_or_else(|_| Json::Str(format!("0x{v:x}")), Json::Num)
}

/// Renders a snapshot blob as lowercase hex (JSON strings cannot carry
/// raw bytes; hex keeps the transcript line-oriented and diffable).
fn blob_to_hex(blob: &[u8]) -> String {
    let mut s = String::with_capacity(blob.len() * 2);
    for b in blob {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses a hex snapshot blob from a `restore` request.
fn blob_from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if hex.len() % 2 != 0 {
        return Err("`snapshot` hex must have even length".to_owned());
    }
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let s = std::str::from_utf8(pair).map_err(|_| "non-ASCII in `snapshot`".to_owned())?;
        out.push(
            u8::from_str_radix(s, 16)
                .map_err(|_| format!("bad hex `{s}` in `snapshot`"))?,
        );
    }
    Ok(out)
}

fn value_fields(v: &Bv) -> [(&'static str, Json); 2] {
    [
        ("value", Json::Str(format!("0x{:x}", v.as_u64()))),
        ("width", Json::Num(i64::from(v.width()))),
    ]
}

/// Parses a port value: `value` is a `0x…` hex string (64-bit values do
/// not survive JSON's float-safe integer range) or a small non-negative
/// integer; `width` is the port width in bits (1..=64), required.
fn parse_value(value: Option<&Json>, width: Option<&Json>) -> Result<Bv, String> {
    let width = match width {
        Some(Json::Num(w)) if (1..=64).contains(w) => *w as u32,
        Some(_) => return Err("`width` must be an integer in 1..=64".to_owned()),
        None => return Err("missing integer field `width`".to_owned()),
    };
    let bits = match value {
        Some(Json::Str(s)) => {
            let hex = s
                .strip_prefix("0x")
                .or_else(|| s.strip_prefix("0X"))
                .ok_or_else(|| format!("string value `{s}` must start with 0x"))?;
            u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex value `{s}`: {e}"))?
        }
        Some(Json::Num(n)) if *n >= 0 => *n as u64,
        Some(_) => return Err("`value` must be a 0x… string or non-negative integer".to_owned()),
        None => return Err("missing field `value`".to_owned()),
    };
    if width < 64 && bits >= (1u64 << width) {
        return Err(format!("value 0x{bits:x} does not fit {width} bits"));
    }
    Ok(Bv::new(bits, width))
}

/// Renders a registry as a single-line [`Json`] object (sorted names,
/// so byte-deterministic for equal contents).
fn registry_to_json(reg: &MetricsRegistry) -> Json {
    let mut fields = Vec::with_capacity(reg.len());
    for (name, value) in reg.iter() {
        let v = match value {
            MetricValue::Counter(c) => num_u64(*c),
            MetricValue::Gauge(g) => Json::Num(*g),
            MetricValue::Histogram(h) => obj([
                ("count", num_u64(h.count())),
                ("sum", num_u64(h.sum())),
                ("min", num_u64(h.min().unwrap_or(0))),
                ("max", num_u64(h.max().unwrap_or(0))),
                (
                    "buckets",
                    Json::Arr(
                        h.nonzero_buckets()
                            .map(|(b, c)| {
                                Json::Arr(vec![Json::Num(b as i64), num_u64(c)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        fields.push((name.to_owned(), v));
    }
    Json::Obj(fields)
}
