//! The design catalog: named, server-buildable designs.
//!
//! Every design the service can open is one of the paper's SRC models,
//! addressed by a short stable name. A catalog entry builds the RTL
//! [`Module`]; gate-level engines then synthesize it through the flow's
//! RTL-to-gate synthesiser. Building a module is cheap (milliseconds);
//! the expensive artefacts — compiled RTL bytecode, synthesized and
//! levelized gate programs — are what the
//! [`CompileCache`](crate::cache::CompileCache) shares across sessions.

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::models::vhdl_ref::build_vhdl_ref;
use scflow::SrcConfig;
use scflow_rtl::Module;

/// Names the service accepts in `open_session.design`, in catalog order.
pub const DESIGN_NAMES: [&str; 6] = [
    "beh_unopt",
    "beh_opt",
    "rtl_unopt",
    "rtl_opt",
    "rtl_buggy",
    "vhdl_ref",
];

/// Builds the named design's RTL module (always the cd-to-dvd SRC
/// configuration, as everywhere else in the flow).
///
/// # Errors
///
/// `None` for a name outside [`DESIGN_NAMES`]; build errors are reported
/// as strings (none occur for the shipped designs, but the protocol
/// keeps the path honest).
pub fn build_design(name: &str) -> Option<Result<Module, String>> {
    let cfg = SrcConfig::cd_to_dvd();
    let module = match name {
        "beh_unopt" => synthesize_beh_src(&cfg, BehVariant::Unoptimised)
            .map(|o| o.module)
            .map_err(|e| e.to_string()),
        "beh_opt" => synthesize_beh_src(&cfg, BehVariant::Optimised)
            .map(|o| o.module)
            .map_err(|e| e.to_string()),
        "rtl_unopt" => build_rtl_src(&cfg, RtlVariant::Unoptimised).map_err(|e| e.to_string()),
        "rtl_opt" => build_rtl_src(&cfg, RtlVariant::Optimised).map_err(|e| e.to_string()),
        "rtl_buggy" => build_rtl_src(&cfg, RtlVariant::OptimisedBuggy).map_err(|e| e.to_string()),
        "vhdl_ref" => build_vhdl_ref(&cfg).map_err(|e| e.to_string()),
        _ => return None,
    };
    Some(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_builds() {
        for name in DESIGN_NAMES {
            let m = build_design(name).expect("known name").expect("builds");
            assert!(!m.ports().is_empty(), "{name} has ports");
        }
        assert!(build_design("nope").is_none());
    }

    #[test]
    fn same_name_builds_identical_content() {
        // The content address must be reproducible across builds — this
        // is what lets concurrent sessions share one compiled program.
        for name in DESIGN_NAMES {
            let a = build_design(name).unwrap().unwrap().stable_hash();
            let b = build_design(name).unwrap().unwrap().stable_hash();
            assert_eq!(a, b, "{name} hash unstable");
        }
    }

    #[test]
    fn distinct_designs_have_distinct_hashes() {
        let mut hashes: Vec<u64> = DESIGN_NAMES
            .iter()
            .map(|n| build_design(n).unwrap().unwrap().stable_hash())
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), DESIGN_NAMES.len());
    }
}
