//! Session management: one deterministic engine per session, one worker
//! thread per engine.
//!
//! Every engine in the workspace borrows its compiled structures
//! (`CompiledSim<'p>` borrows the bytecode program, `BitGateSim<'p>`
//! the gate program, …) and the whole workspace forbids unsafe code, so
//! a session cannot be a self-referential "engine plus program" struct.
//! Instead each session runs on a dedicated worker thread that holds
//! the shared [`Arc<Artifact>`](Artifact) on its stack, builds the
//! borrowing engine locally, and then loops over a request channel.
//! The thread *is* the session: its stack pins the artefact (which also
//! pins the cache entry against eviction), and exclusive ownership of
//! the engine gives per-session determinism for free — replies depend
//! only on the session's own request sequence, never on what other
//! sessions do concurrently.
//!
//! The pool is bounded ([`ServeOptions::threads`]); opening a session
//! beyond the bound is refused with `server_busy` instead of queued, so
//! a stalled client can never wedge every worker behind it. Panics are
//! caught per request and surfaced as `engine_panic` error replies —
//! nothing unwinds across the protocol boundary.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use scflow::prelude::ServeOptions;
use scflow_gate::{sim_threads, CellLibrary, FastGateSim, GateSim, OwnedParGateSim};
use scflow_hwtypes::{Bv, PassConfig};
use scflow_obs::MetricsRegistry;
use scflow_rtl::{Module, RtlSim};
use scflow_sim_api::{SimError, Simulation, Snapshot, StimulusBatch};
use scflow_synth::{synthesize, SynthOptions};

use crate::cache::{Artifact, CompileCache};
use crate::designs::build_design;

/// Number of stimulus lanes the bit-parallel engines are built with —
/// the width of one `step_batch` lanes-mode dispatch.
pub const BATCH_LANES: u32 = 64;

/// The engines a session can run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Tree-walking RTL interpreter (uncached: it consumes the module
    /// directly and compiles nothing).
    RtlInterp,
    /// Compiled levelized RTL bytecode (cached).
    RtlCompiled,
    /// 64-lane bit-parallel executor over the compiled RTL bytecode
    /// (cached program; accepts lanes-mode batches and snapshots).
    RtlBitpar,
    /// Event-driven four-valued gate simulator (cached netlist).
    GateEvent,
    /// Zero-delay levelized gate engine (cached netlist).
    GateFast,
    /// Compiled bit-parallel gate engine on [`BATCH_LANES`] lanes
    /// (cached program; accepts lanes-mode batches and snapshots).
    GateBitpar,
    /// Partitioned multi-threaded gate engine behind its owning handle
    /// ([`OwnedParGateSim`]) on [`sim_threads`] workers (cached
    /// program; single-pattern, byte-identical to the serial engines).
    GatePartitioned,
}

impl EngineKind {
    /// Parses a protocol engine name.
    pub fn parse(name: &str) -> Result<Self, &'static str> {
        match name {
            "rtl.interpreted" => Ok(EngineKind::RtlInterp),
            "rtl.compiled" => Ok(EngineKind::RtlCompiled),
            "rtl.bitpar" => Ok(EngineKind::RtlBitpar),
            "gate.event" => Ok(EngineKind::GateEvent),
            "gate.fast" => Ok(EngineKind::GateFast),
            "gate.bitpar" => Ok(EngineKind::GateBitpar),
            "gate.partitioned" => Ok(EngineKind::GatePartitioned),
            _ => Err("unknown engine"),
        }
    }

    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::RtlInterp => "rtl.interpreted",
            EngineKind::RtlCompiled => "rtl.compiled",
            EngineKind::RtlBitpar => "rtl.bitpar",
            EngineKind::GateEvent => "gate.event",
            EngineKind::GateFast => "gate.fast",
            EngineKind::GateBitpar => "gate.bitpar",
            EngineKind::GatePartitioned => "gate.partitioned",
        }
    }

    fn needs_gate_artifact(self) -> bool {
        matches!(
            self,
            EngineKind::GateEvent
                | EngineKind::GateFast
                | EngineKind::GateBitpar
                | EngineKind::GatePartitioned
        )
    }
}

/// A request to a session worker.
#[derive(Debug)]
pub enum Req {
    /// Drive an input port.
    Poke(String, Bv),
    /// Read an output port.
    Peek(String),
    /// Run clock cycles with inputs held.
    Step(u64),
    /// Settle combinational logic.
    Settle,
    /// Dispatch a batch of stimulus tuples in one pass.
    StepBatch {
        /// The stimulus tuples and batch-wide read list.
        batch: StimulusBatch,
        /// Lanes mode: drive item *i* into bit-parallel lane *i*.
        lanes: bool,
    },
    /// Capture the engine's full simulation state.
    Snapshot,
    /// Restore state captured by an earlier snapshot of this engine
    /// kind and design.
    Restore(Snapshot),
    /// Read the toggle-coverage map.
    Coverage,
    /// Snapshot the engine's metrics registry.
    Metrics,
    /// Return the engine to its power-on state.
    Reset,
    /// Shut the session down.
    Close,
}

/// A session worker's reply.
#[derive(Debug)]
pub enum Resp {
    /// Success with no payload.
    Done,
    /// A port value.
    Value(Bv),
    /// Total completed cycles after the request.
    Cycles(u64),
    /// Per-item output reads of a batch, plus total completed cycles.
    Batch {
        /// `outputs[i]` are item *i*'s `(port, value)` reads.
        outputs: Vec<Vec<(String, Bv)>>,
        /// Total completed cycles after the batch.
        cycles: u64,
    },
    /// The engine's state blob.
    Snapshot(Snapshot),
    /// The coverage map.
    Coverage {
        /// Bits that both rose and fell.
        covered_bits: u64,
        /// Total tracked bits.
        total_bits: u64,
        /// Total transitions.
        flips: u64,
        /// Samples taken (including priming).
        samples: u64,
        /// One-line summary.
        summary: String,
        /// The byte-comparable per-item map.
        report: String,
    },
    /// The engine's metrics registry (`None` if unsupported).
    Metrics(Option<MetricsRegistry>),
    /// A port-level error.
    Sim(SimError),
    /// A service-level error: `(code, message)`.
    Failed(&'static str, String),
}

/// Extracts a readable message from a caught panic payload.
pub fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

type ReqEnvelope = (Req, mpsc::Sender<Resp>);

struct Session {
    tx: mpsc::Sender<ReqEnvelope>,
    join: Option<JoinHandle<()>>,
    design: String,
    kind: EngineKind,
}

/// Monotonic session-lifecycle counters for the server metrics.
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Sessions opened over the manager's lifetime.
    pub opened: AtomicU64,
    /// Sessions closed.
    pub closed: AtomicU64,
    /// Opens refused because the pool was full.
    pub busy_rejections: AtomicU64,
}

/// The session table plus the bounded worker pool.
pub struct SessionMgr {
    cache: Arc<CompileCache>,
    max_sessions: usize,
    sessions: Mutex<HashMap<String, Session>>,
    next_id: AtomicU64,
    /// Lifecycle counters (exported as `serve.sessions.*`).
    pub counters: SessionCounters,
}

/// What `open_session` reports about the compile cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Artefact was already cached (or shared from an in-flight build).
    Hit,
    /// This open compiled the artefact.
    Miss,
    /// The engine does not use the cache (`rtl.interpreted`).
    Uncached,
}

impl CacheOutcome {
    /// The protocol string.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Uncached => "none",
        }
    }
}

impl SessionMgr {
    /// A manager with a bounded pool sharing `cache`.
    pub fn new(opts: &ServeOptions, cache: Arc<CompileCache>) -> Self {
        SessionMgr {
            cache,
            max_sessions: opts.threads,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: SessionCounters::default(),
        }
    }

    /// Live sessions.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session table").len()
    }

    /// Opens a session: resolves the design, obtains the compiled
    /// artefact (through the cache for every engine but the
    /// interpreter) and spawns the worker. Returns the session id, the
    /// cache outcome and the artefact's content hash.
    ///
    /// # Errors
    ///
    /// `(code, message)` protocol errors: `unknown_design`,
    /// `unknown_engine` / `unsupported_engine`, `server_busy`,
    /// `compile_error`.
    pub fn open(
        &self,
        design: &str,
        engine: &str,
        coverage: bool,
        passes: &PassConfig,
    ) -> Result<(String, CacheOutcome, u64), (&'static str, String)> {
        let kind = EngineKind::parse(engine).map_err(|msg| {
            if msg.starts_with("unknown") {
                ("unknown_engine", format!("unknown engine `{engine}`"))
            } else {
                ("unsupported_engine", msg.to_owned())
            }
        })?;
        let module = build_design(design)
            .ok_or_else(|| ("unknown_design", format!("unknown design `{design}`")))?
            .map_err(|e| ("compile_error", e))?;
        // Content addresses incorporate the pass configuration: two
        // sessions at different optimization levels must neither share
        // a compiled artefact nor accept each other's snapshots (the
        // engines enforce the latter through the program's
        // `state_identity`; distinct cache keys keep it honest here).
        let module_hash = module.stable_hash_with(passes);

        // Refuse early when the pool is already full — before paying
        // for a compile the session could not use anyway.
        if self.active() >= self.max_sessions {
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err((
                "server_busy",
                format!("session pool full ({} sessions)", self.max_sessions),
            ));
        }

        let (artifact, outcome, content_hash) = match kind {
            EngineKind::RtlInterp => (None, CacheOutcome::Uncached, module_hash),
            EngineKind::RtlCompiled | EngineKind::RtlBitpar => {
                let key = level_key("rtl", module_hash);
                let (art, hit) = self
                    .cache
                    .get_or_compile(key, || {
                        scflow_rtl::CompiledProgram::compile_with(&module, passes)
                            .map(Artifact::Rtl)
                            .map_err(|e| e.to_string())
                    })
                    .map_err(|e| ("compile_error", e))?;
                let outcome = if hit { CacheOutcome::Hit } else { CacheOutcome::Miss };
                (Some(art), outcome, module_hash)
            }
            _ if kind.needs_gate_artifact() => {
                let key = level_key("gate", module_hash);
                let (art, hit) = self
                    .cache
                    .get_or_compile(key, || {
                        let lib = CellLibrary::generic_025u();
                        let mut netlist = synthesize(&module, &lib, &SynthOptions::default())
                            .map_err(|e| e.to_string())?
                            .netlist;
                        if passes.any() {
                            netlist = scflow_gate::optimize(&netlist, passes)
                                .map_err(|e| e.to_string())?
                                .netlist;
                        }
                        scflow_gate::GateProgram::compile(&netlist)
                            .map(Artifact::Gate)
                            .map_err(|e| e.to_string())
                    })
                    .map_err(|e| ("compile_error", e))?;
                let outcome = if hit { CacheOutcome::Hit } else { CacheOutcome::Miss };
                let hash = art.gate().expect("gate artifact").content_hash();
                (Some(art), outcome, hash)
            }
            _ => unreachable!("all kinds covered"),
        };

        let (tx, rx) = mpsc::channel::<ReqEnvelope>();
        let module_for_worker = matches!(kind, EngineKind::RtlInterp).then_some(module);
        let join = std::thread::Builder::new()
            .name(format!("scflow-serve-{}", kind.name()))
            .spawn(move || worker(kind, coverage, module_for_worker, artifact, rx))
            .map_err(|e| ("server_busy", format!("cannot spawn worker: {e}")))?;

        let mut table = self.sessions.lock().expect("session table");
        if table.len() >= self.max_sessions {
            // Lost a race for the last slot; unwind the spawn cleanly.
            drop(tx);
            drop(table);
            let _ = join.join();
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err((
                "server_busy",
                format!("session pool full ({} sessions)", self.max_sessions),
            ));
        }
        let id = format!("s{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        table.insert(
            id.clone(),
            Session {
                tx,
                join: Some(join),
                design: design.to_owned(),
                kind,
            },
        );
        self.counters.opened.fetch_add(1, Ordering::Relaxed);
        Ok((id, outcome, content_hash))
    }

    /// The `(design, engine)` pair of a live session.
    pub fn describe(&self, id: &str) -> Option<(String, EngineKind)> {
        let table = self.sessions.lock().expect("session table");
        table.get(id).map(|s| (s.design.clone(), s.kind))
    }

    /// Sends `req` to session `id` and waits for the reply.
    pub fn request(&self, id: &str, req: Req) -> Resp {
        let closing = matches!(req, Req::Close);
        let tx = {
            let table = self.sessions.lock().expect("session table");
            match table.get(id) {
                Some(s) => s.tx.clone(),
                None => {
                    return Resp::Failed("unknown_session", format!("no session `{id}`"));
                }
            }
        };
        let (rtx, rrx) = mpsc::channel();
        let resp = if tx.send((req, rtx)).is_err() {
            Resp::Failed("session_dead", format!("session `{id}` worker is gone"))
        } else {
            rrx.recv().unwrap_or_else(|_| {
                Resp::Failed("session_dead", format!("session `{id}` worker is gone"))
            })
        };
        if closing {
            if let Some(mut s) = self.sessions.lock().expect("session table").remove(id) {
                drop(s.tx);
                if let Some(j) = s.join.take() {
                    let _ = j.join();
                }
                self.counters.closed.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }

    /// Closes every live session (used on server shutdown).
    pub fn close_all(&self) {
        let ids: Vec<String> = {
            let table = self.sessions.lock().expect("session table");
            table.keys().cloned().collect()
        };
        for id in ids {
            let _ = self.request(&id, Req::Close);
        }
    }
}

impl Drop for SessionMgr {
    fn drop(&mut self) {
        self.close_all();
    }
}

/// Namespaces a content hash by refinement level, so an RTL artefact
/// and the gate artefact synthesized from the same module get distinct
/// cache keys.
fn level_key(level: &str, content_hash: u64) -> u64 {
    let mut h = scflow_hwtypes::Fnv64::new();
    h.write_str(level);
    h.write_u64(content_hash);
    h.finish()
}

/// The worker: builds the borrowing engine on this thread's stack
/// (pinning `artifact`), then serves requests until close or hangup.
fn worker(
    kind: EngineKind,
    coverage: bool,
    module: Option<Module>,
    artifact: Option<Arc<Artifact>>,
    rx: mpsc::Receiver<ReqEnvelope>,
) {
    match kind {
        EngineKind::RtlInterp => {
            let module = module.expect("interpreter module");
            let mut sim = RtlSim::new(&module);
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::RtlCompiled => {
            let artifact = artifact.expect("rtl artifact");
            let prog = artifact.rtl().expect("rtl artifact");
            let mut sim = prog.simulator();
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::RtlBitpar => {
            let artifact = artifact.expect("rtl artifact");
            let prog = artifact.rtl().expect("rtl artifact");
            let mut sim = prog.bit_simulator();
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::GateEvent => {
            let artifact = artifact.expect("gate artifact");
            let prog = artifact.gate().expect("gate artifact");
            let lib = CellLibrary::generic_025u();
            let mut sim = GateSim::new(prog.netlist(), &lib);
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::GateFast => {
            let artifact = artifact.expect("gate artifact");
            let prog = artifact.gate().expect("gate artifact");
            let mut sim = FastGateSim::new(prog.netlist()).expect("levelizable netlist");
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::GateBitpar => {
            let artifact = artifact.expect("gate artifact");
            let prog = artifact.gate().expect("gate artifact");
            let mut sim = prog.simulator_lanes(BATCH_LANES);
            serve_loop(&mut sim, coverage, &rx);
        }
        EngineKind::GatePartitioned => {
            // The owning handle moves the shared artefact onto its host
            // thread, which pins the cache entry just like the stack of
            // the other workers does.
            let artifact = artifact.expect("gate artifact");
            let mut sim = OwnedParGateSim::spawn(
                artifact,
                |a| a.gate().expect("gate artifact"),
                sim_threads(),
                1,
            );
            serve_loop(&mut sim, coverage, &rx);
        }
    }
}

fn serve_loop(sim: &mut dyn Simulation, coverage: bool, rx: &mpsc::Receiver<ReqEnvelope>) {
    // Synthesized netlists are scan-stitched; hold the scan chain
    // inactive so functional behaviour matches the RTL (the cosim
    // lockstep driver does the same before clocking a gate DUT).
    if sim.has_input("scan_en") {
        let _ = sim.try_poke("scan_en", Bv::zero(1));
        let _ = sim.try_poke("scan_in", Bv::zero(1));
    }
    if sim.has_input("test_mode") {
        let _ = sim.try_poke("test_mode", Bv::zero(1));
    }
    if coverage {
        sim.set_coverage(true);
    }
    while let Ok((req, reply)) = rx.recv() {
        let closing = matches!(req, Req::Close);
        // The engines are all safe code, but a client must never be
        // able to take the whole server down: panics (e.g. a lane index
        // assert) become structured error replies.
        let resp = catch_unwind(AssertUnwindSafe(|| handle(sim, req)))
            .unwrap_or_else(|p| Resp::Failed("engine_panic", panic_message(&*p)));
        let _ = reply.send(resp);
        if closing {
            break;
        }
    }
}

fn handle(sim: &mut dyn Simulation, req: Req) -> Resp {
    match req {
        Req::Poke(port, value) => match sim.try_poke(&port, value) {
            Ok(()) => Resp::Done,
            Err(e) => Resp::Sim(e),
        },
        Req::Peek(port) => match sim.try_peek(&port) {
            Ok(v) => Resp::Value(v),
            Err(e) => Resp::Sim(e),
        },
        Req::Step(n) => {
            sim.run_cycles(n);
            Resp::Cycles(sim.cycle())
        }
        Req::Settle => {
            sim.settle();
            Resp::Done
        }
        // Both batch shapes go through the redesigned `Simulation`
        // batch API: the portable sequential default (or an engine's
        // fused override) and the lane-parallel dispatch of the
        // bit-parallel engines. The trait's `BatchError` carries the
        // protocol code and wire message.
        Req::StepBatch { batch, lanes } => {
            let result = if lanes {
                sim.step_batch_lanes(&batch)
            } else {
                sim.step_batch(&batch)
            };
            match result {
                Ok(reply) => Resp::Batch {
                    outputs: reply.outputs,
                    cycles: reply.cycles,
                },
                Err(e) => Resp::Failed(e.code(), e.to_string()),
            }
        }
        Req::Snapshot => match sim.snapshot() {
            Some(snap) => Resp::Snapshot(snap),
            None => Resp::Failed(
                "snapshot_unsupported",
                "this engine does not support snapshots".to_owned(),
            ),
        },
        Req::Restore(snap) => {
            if sim.restore(&snap) {
                Resp::Done
            } else if sim.snapshot().is_none() {
                Resp::Failed(
                    "snapshot_unsupported",
                    "this engine does not support snapshots".to_owned(),
                )
            } else {
                Resp::Failed(
                    "stale_snapshot",
                    "snapshot does not match this session's engine and design".to_owned(),
                )
            }
        }
        Req::Coverage => match sim.coverage() {
            Some(c) => Resp::Coverage {
                covered_bits: c.covered_bits(),
                total_bits: c.total_bits(),
                flips: c.total_flips(),
                samples: c.samples(),
                summary: c.summary(),
                report: c.report(),
            },
            None => Resp::Failed(
                "coverage_disabled",
                "session was opened without coverage".to_owned(),
            ),
        },
        Req::Metrics => Resp::Metrics(sim.metrics()),
        Req::Reset => {
            if sim.reset() {
                Resp::Done
            } else {
                Resp::Failed(
                    "unsupported_op",
                    "this engine does not support in-place reset".to_owned(),
                )
            }
        }
        Req::Close => Resp::Done,
    }
}
