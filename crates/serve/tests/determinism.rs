//! The service's determinism contract, end to end: concurrent sessions
//! produce byte-identical reply transcripts to a serial run of the same
//! per-session request sequences, on every servable engine, including
//! coverage maps, engine metrics and the deterministic-mode server
//! metrics.

use scflow::prelude::ServeOptions;
use scflow_serve::Server;

const ENGINES: [&str; 7] = [
    "rtl.interpreted",
    "rtl.compiled",
    "rtl.bitpar",
    "gate.event",
    "gate.fast",
    "gate.bitpar",
    "gate.partitioned",
];

fn open(server: &Server, design: &str, engine: &str) -> String {
    let reply = server.handle_line(&format!(
        r#"{{"id":0,"op":"open_session","design":"{design}","engine":"{engine}","coverage":true}}"#
    ));
    assert!(reply.contains(r#""ok":true"#), "open failed: {reply}");
    let tag = r#""session":""#;
    let start = reply.find(tag).unwrap() + tag.len();
    let end = reply[start..].find('"').unwrap() + start;
    reply[start..end].to_owned()
}

/// One session's full workload: batched sweep, then coverage and
/// metrics. Returns every reply in order. The transcript contains no
/// session ids or request ids, so it is comparable across sessions.
fn workload(server: &Server, sid: &str) -> Vec<String> {
    let items: Vec<String> = (0u64..6)
        .map(|i| {
            format!(
                concat!(
                    r#"{{"pokes":[{{"port":"in_sample","value":"0x{:x}","width":16}},"#,
                    r#"{{"port":"in_sample_valid","value":{},"width":1}},"#,
                    r#"{{"port":"out_sample_ready","value":1,"width":1}}],"cycles":3}}"#
                ),
                (i * 0x1111) & 0xffff,
                i % 2
            )
        })
        .collect();
    let mut out = Vec::new();
    out.push(server.handle_line(&format!(
        r#"{{"id":1,"op":"step_batch","session":"{sid}","items":[{}],"read":["out_sample","out_sample_valid","dbg_state"]}}"#,
        items.join(",")
    )));
    out.push(server.handle_line(&format!(
        r#"{{"id":1,"op":"peek","session":"{sid}","port":"out_sample"}}"#
    )));
    out.push(server.handle_line(&format!(
        r#"{{"id":1,"op":"coverage","session":"{sid}"}}"#
    )));
    out.push(server.handle_line(&format!(
        r#"{{"id":1,"op":"metrics","session":"{sid}"}}"#
    )));
    for r in &out {
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    out
}

#[test]
fn four_concurrent_sessions_match_a_serial_run_per_engine() {
    for engine in ENGINES {
        // Serial reference: one session at a time on a fresh server.
        let serial_server = Server::new(&ServeOptions::default());
        let sid = open(&serial_server, "rtl_opt", engine);
        let reference = workload(&serial_server, &sid);

        // Four sessions driven concurrently on one shared server.
        let server = Server::new(&ServeOptions {
            addr: None,
            threads: 4,
            cache_cap: 8,
        });
        let logs: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let sid = open(&server, "rtl_opt", engine);
                        workload(&server, &sid)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(
                log, &reference,
                "{engine}: concurrent session {i} diverged from the serial run"
            );
        }
    }
}

#[test]
fn deterministic_server_metrics_are_identical_across_runs() {
    // Two independent servers, same concurrent workload: the
    // deterministic-mode server metrics (no wall clock, no latency
    // histograms) must come out byte-identical.
    let run = || {
        let server = Server::new(&ServeOptions {
            addr: None,
            threads: 4,
            cache_cap: 8,
        });
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sid = open(&server, "rtl_opt", "gate.bitpar");
                    workload(&server, &sid);
                    let r = server
                        .handle_line(&format!(r#"{{"id":1,"op":"close","session":"{sid}"}}"#));
                    assert!(r.contains(r#""ok":true"#), "{r}");
                });
            }
        });
        server.handle_line(r#"{"id":1,"op":"server_metrics","deterministic":true}"#)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "deterministic server metrics diverged");
    // Sanity: the reply actually carries the cache/session counters and
    // excludes the wall-clock ones.
    assert!(a.contains(r#""serve.cache.compiles":1"#), "{a}");
    assert!(a.contains(r#""serve.sessions.opened":4"#), "{a}");
    assert!(!a.contains("serve.latency."), "{a}");
    assert!(!a.contains("serve.requests."), "{a}");
}

#[test]
fn rtl_and_gate_sessions_agree_on_outputs() {
    // Cross-refinement check through the service: the compiled-RTL
    // session and the bit-parallel gate session of the same design
    // produce identical output values for the same stimulus.
    let server = Server::new(&ServeOptions::default());
    let rtl = open(&server, "rtl_opt", "rtl.compiled");
    let gate = open(&server, "rtl_opt", "gate.bitpar");
    let rtl_log = workload(&server, &rtl);
    let gate_log = workload(&server, &gate);
    // Batch outputs (reply 0) and the follow-up peek (reply 1) agree;
    // coverage/metrics legitimately differ across refinement levels.
    assert_eq!(rtl_log[0], gate_log[0]);
    assert_eq!(rtl_log[1], gate_log[1]);
}

#[test]
fn partitioned_session_matches_the_serial_gate_engines() {
    // The owning-handle partitioned session must be byte-identical to
    // the single-threaded bit-parallel session on outputs AND the
    // coverage map — only the metrics prefix may differ.
    let server = Server::new(&ServeOptions::default());
    let bitpar = open(&server, "rtl_opt", "gate.bitpar");
    let par = open(&server, "rtl_opt", "gate.partitioned");
    let bitpar_log = workload(&server, &bitpar);
    let par_log = workload(&server, &par);
    assert_eq!(bitpar_log[0], par_log[0], "batch outputs diverged");
    assert_eq!(bitpar_log[1], par_log[1], "peek diverged");
    assert_eq!(bitpar_log[2], par_log[2], "coverage map diverged");
}
