//! Wire-protocol conformance: reply shapes are pinned byte-for-byte
//! (the verify script separately pins a golden transcript with `cmp`),
//! every documented error code is reachable, and a batched request is
//! observationally identical to the unbatched sequence it replaces.

use scflow::prelude::ServeOptions;
use scflow_serve::Server;

fn server() -> Server {
    Server::new(&ServeOptions::default())
}

fn open(server: &Server, design: &str, engine: &str, coverage: bool) -> String {
    let reply = server.handle_line(&format!(
        r#"{{"id":0,"op":"open_session","design":"{design}","engine":"{engine}","coverage":{coverage}}}"#
    ));
    assert!(reply.contains(r#""ok":true"#), "open failed: {reply}");
    let tag = r#""session":""#;
    let start = reply.find(tag).unwrap() + tag.len();
    let end = reply[start..].find('"').unwrap() + start;
    reply[start..end].to_owned()
}

fn error_code(reply: &str) -> Option<&str> {
    let tag = r#""error":{"code":""#;
    let start = reply.find(tag)? + tag.len();
    let end = reply[start..].find('"')? + start;
    Some(&reply[start..end])
}

#[test]
fn ping_reply_is_byte_stable() {
    let s = server();
    assert_eq!(
        s.handle_line(r#"{"id":7,"op":"ping"}"#),
        r#"{"id":7,"ok":true,"server":"scflow-serve","protocol":1}"#
    );
    // `id` is echoed verbatim, including string ids.
    assert_eq!(
        s.handle_line(r#"{"id":"x","op":"ping"}"#),
        r#"{"id":"x","ok":true,"server":"scflow-serve","protocol":1}"#
    );
}

#[test]
fn every_documented_error_code_is_reachable() {
    let s = server();
    let check = |req: &str, code: &str| {
        let reply = s.handle_line(req);
        assert_eq!(error_code(&reply), Some(code), "req {req} got {reply}");
    };
    check("{not json", "bad_json");
    check(r#"{"id":1,"value":3}"#, "bad_request");
    check(r#"{"id":1,"op":"warp"}"#, "unknown_op");
    check(
        r#"{"id":1,"op":"open_session","design":"nope","engine":"rtl.compiled"}"#,
        "unknown_design",
    );
    check(
        r#"{"id":1,"op":"open_session","design":"rtl_opt","engine":"rtl.jit"}"#,
        "unknown_engine",
    );
    check(r#"{"id":1,"op":"peek","session":"s99","port":"out_sample"}"#, "unknown_session");

    let sid = open(&s, "rtl_opt", "rtl.compiled", false);
    check(
        &format!(r#"{{"id":1,"op":"poke","session":"{sid}","port":"zz","value":0,"width":1}}"#),
        "unknown_port",
    );
    check(
        &format!(r#"{{"id":1,"op":"poke","session":"{sid}","port":"out_sample","value":0,"width":16}}"#),
        "not_an_input",
    );
    check(
        &format!(r#"{{"id":1,"op":"peek","session":"{sid}","port":"in_sample"}}"#),
        "not_an_output",
    );
    check(
        &format!(r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample","value":0,"width":4}}"#),
        "width_mismatch",
    );
    check(
        &format!(r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample","value":"0x10000","width":16}}"#),
        "bad_value",
    );
    check(
        &format!(r#"{{"id":1,"op":"coverage","session":"{sid}"}}"#),
        "coverage_disabled",
    );
    check(
        &format!(
            r#"{{"id":1,"op":"step_batch","session":"{sid}","mode":"lanes","items":[{{"cycles":1}}]}}"#
        ),
        "lanes_unsupported",
    );
    check(
        &format!(
            r#"{{"id":1,"op":"step_batch","session":"{sid}","items":[{{"pokes":[{{"port":"zz","value":0,"width":1}}],"cycles":1}}]}}"#
        ),
        "bad_batch_item",
    );

    let gate = open(&s, "rtl_opt", "gate.bitpar", false);
    let many: Vec<String> = (0..65).map(|_| r#"{"cycles":1}"#.to_owned()).collect();
    check(
        &format!(
            r#"{{"id":1,"op":"step_batch","session":"{gate}","mode":"lanes","items":[{}]}}"#,
            many.join(",")
        ),
        "lanes_overflow",
    );
    check(
        &format!(
            r#"{{"id":1,"op":"step_batch","session":"{gate}","mode":"lanes","items":[{{"cycles":1}},{{"cycles":2}}]}}"#
        ),
        "lanes_mismatch",
    );

    // Snapshot error codes: the interpreter has no snapshot support,
    // restoring a blob onto a different design is stale, and a
    // non-hex blob is refused before it reaches the engine.
    let interp = open(&s, "rtl_opt", "rtl.interpreted", false);
    check(
        &format!(r#"{{"id":1,"op":"snapshot","session":"{interp}"}}"#),
        "snapshot_unsupported",
    );
    check(
        &format!(r#"{{"id":1,"op":"restore","session":"{interp}","snapshot":"00"}}"#),
        "snapshot_unsupported",
    );
    let snap_reply = s.handle_line(&format!(r#"{{"id":1,"op":"snapshot","session":"{sid}"}}"#));
    assert!(snap_reply.contains(r#""ok":true"#), "{snap_reply}");
    let tag = r#""snapshot":""#;
    let ss = snap_reply.find(tag).unwrap() + tag.len();
    let se = snap_reply[ss..].find('"').unwrap() + ss;
    let blob = &snap_reply[ss..se];
    let other = open(&s, "rtl_unopt", "rtl.compiled", false);
    check(
        &format!(r#"{{"id":1,"op":"restore","session":"{other}","snapshot":"{blob}"}}"#),
        "stale_snapshot",
    );
    check(
        &format!(r#"{{"id":1,"op":"restore","session":"{sid}","snapshot":"zz"}}"#),
        "bad_value",
    );
    let r = s.handle_line(&format!(
        r#"{{"id":1,"op":"restore","session":"{sid}","snapshot":"{blob}"}}"#
    ));
    assert!(r.contains(r#""ok":true"#), "own blob restores: {r}");

    // Closing twice: the second close sees no session.
    let r = s.handle_line(&format!(r#"{{"id":1,"op":"close","session":"{sid}"}}"#));
    assert!(r.contains(r#""ok":true"#));
    check(&format!(r#"{{"id":1,"op":"close","session":"{sid}"}}"#), "unknown_session");
}

#[test]
fn hex_values_round_trip_and_floats_are_refused() {
    let s = server();
    let sid = open(&s, "rtl_opt", "rtl.compiled", false);
    let r = s.handle_line(&format!(
        r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample","value":"0xBEEF","width":16}}"#
    ));
    assert_eq!(r, r#"{"id":1,"ok":true}"#);
    let r = s.handle_line(&format!(
        r#"{{"id":2,"op":"poke","session":"{sid}","port":"in_sample","value":1.5,"width":16}}"#
    ));
    assert_eq!(error_code(&r), Some("bad_json"));
}

#[test]
fn step_batch_equals_the_unbatched_sequence() {
    let s = server();
    let stimulus: [(u64, u64); 5] = [(0x101, 3), (0x7fff, 1), (0, 2), (0x4242, 4), (0xffff, 1)];

    // Unbatched: poke / step / peek per tuple.
    let a = open(&s, "rtl_opt", "rtl.compiled", false);
    let mut unbatched = Vec::new();
    for (v, cycles) in stimulus {
        for (port, val, w) in [
            ("in_sample", v, 16),
            ("in_sample_valid", 1, 1),
            ("out_sample_ready", 1, 1),
        ] {
            let r = s.handle_line(&format!(
                r#"{{"id":1,"op":"poke","session":"{a}","port":"{port}","value":"0x{val:x}","width":{w}}}"#
            ));
            assert!(r.contains(r#""ok":true"#), "{r}");
        }
        let r = s.handle_line(&format!(
            r#"{{"id":1,"op":"step","session":"{a}","cycles":{cycles}}}"#
        ));
        assert!(r.contains(r#""ok":true"#), "{r}");
        for port in ["out_sample", "out_sample_valid"] {
            let r = s.handle_line(&format!(
                r#"{{"id":1,"op":"peek","session":"{a}","port":"{port}"}}"#
            ));
            unbatched.push(r);
        }
    }

    // Batched: the same tuples in one request.
    let b = open(&s, "rtl_opt", "rtl.compiled", false);
    let items: Vec<String> = stimulus
        .iter()
        .map(|(v, cycles)| {
            format!(
                concat!(
                    r#"{{"pokes":[{{"port":"in_sample","value":"0x{:x}","width":16}},"#,
                    r#"{{"port":"in_sample_valid","value":1,"width":1}},"#,
                    r#"{{"port":"out_sample_ready","value":1,"width":1}}],"cycles":{}}}"#
                ),
                v, cycles
            )
        })
        .collect();
    let r = s.handle_line(&format!(
        r#"{{"id":1,"op":"step_batch","session":"{b}","items":[{}],"read":["out_sample","out_sample_valid"]}}"#,
        items.join(",")
    ));
    assert!(r.contains(r#""ok":true"#), "{r}");

    // Every batched read equals the unbatched peek, in order.
    let mut batched = Vec::new();
    for part in r.split(r#"{"port":""#).skip(1) {
        let port = &part[..part.find('"').unwrap()];
        let tag = r#""value":""#;
        let vs = part.find(tag).unwrap() + tag.len();
        let ve = part[vs..].find('"').unwrap() + vs;
        batched.push((port.to_owned(), part[vs..ve].to_owned()));
    }
    assert_eq!(batched.len(), unbatched.len());
    for ((port, value), peek_reply) in batched.iter().zip(&unbatched) {
        assert!(
            peek_reply.contains(&format!(r#""value":"{value}""#)),
            "batched {port}={value} but unbatched peek said {peek_reply}"
        );
    }

    // Total cycle counts agree too.
    let total: u64 = stimulus.iter().map(|&(_, c)| c).sum();
    assert!(r.contains(&format!(r#""cycles":{total}"#)), "{r}");
}

#[test]
fn engine_panic_is_a_reply_not_a_crash() {
    let s = server();
    let sid = open(&s, "rtl_opt", "gate.bitpar", false);
    // 65 lanes passes the netlist port checks (they are lane-agnostic)
    // but would overflow the engine — the protocol guard refuses it
    // before the engine sees it, and the session survives.
    let r = s.handle_line(&format!(
        r#"{{"id":1,"op":"step_batch","session":"{sid}","mode":"lanes","items":[{{"cycles":1}},{{"cycles":1}}],"read":["out_sample"]}}"#
    ));
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = s.handle_line(&format!(r#"{{"id":2,"op":"step","session":"{sid}"}}"#));
    assert!(r.contains(r#""ok":true"#), "session still alive: {r}");
}

#[test]
fn server_busy_when_the_pool_is_full() {
    let s = Server::new(&ServeOptions {
        addr: None,
        threads: 1,
        cache_cap: 8,
    });
    let _keep = open(&s, "rtl_opt", "rtl.compiled", false);
    let r = s.handle_line(
        r#"{"id":1,"op":"open_session","design":"rtl_opt","engine":"rtl.compiled"}"#,
    );
    assert_eq!(error_code(&r), Some("server_busy"));
}

#[test]
fn snapshot_fork_replays_identically_on_every_capable_engine() {
    // Warm up, snapshot, run a tail, then restore the blob and rerun
    // the same tail: the peek replies must be byte-identical on every
    // snapshot-capable engine.
    let s = server();
    for engine in ["rtl.compiled", "rtl.bitpar", "gate.bitpar"] {
        let sid = open(&s, "rtl_opt", engine, false);
        let drive = |v: u64, cycles: u64| {
            for (port, val, w) in [
                ("in_sample", v, 16u32),
                ("in_sample_valid", 1, 1),
                ("out_sample_ready", 1, 1),
            ] {
                let r = s.handle_line(&format!(
                    r#"{{"id":1,"op":"poke","session":"{sid}","port":"{port}","value":"0x{val:x}","width":{w}}}"#
                ));
                assert!(r.contains(r#""ok":true"#), "{r}");
            }
            let r = s.handle_line(&format!(
                r#"{{"id":1,"op":"step","session":"{sid}","cycles":{cycles}}}"#
            ));
            assert!(r.contains(r#""ok":true"#), "{r}");
        };
        let tail_peeks = |label: &str| -> Vec<String> {
            ["out_sample", "out_sample_valid", "dbg_state"]
                .iter()
                .map(|port| {
                    let r = s.handle_line(&format!(
                        r#"{{"id":1,"op":"peek","session":"{sid}","port":"{port}"}}"#
                    ));
                    assert!(r.contains(r#""ok":true"#), "{label}: {r}");
                    r
                })
                .collect()
        };
        for i in 0..10u64 {
            drive(i * 0x213, 2);
        }
        let snap = s.handle_line(&format!(r#"{{"id":1,"op":"snapshot","session":"{sid}"}}"#));
        assert!(snap.contains(r#""ok":true"#), "{engine}: {snap}");
        let tag = r#""snapshot":""#;
        let ss = snap.find(tag).unwrap() + tag.len();
        let se = snap[ss..].find('"').unwrap() + ss;
        let blob = snap[ss..se].to_owned();

        for i in 0..7u64 {
            drive(0x8000 | (i * 0x777), 3);
        }
        let straight = tail_peeks("straight");

        let r = s.handle_line(&format!(
            r#"{{"id":1,"op":"restore","session":"{sid}","snapshot":"{blob}"}}"#
        ));
        assert!(r.contains(r#""ok":true"#), "{engine}: restore failed: {r}");
        for i in 0..7u64 {
            drive(0x8000 | (i * 0x777), 3);
        }
        let rerun = tail_peeks("rerun");
        assert_eq!(straight, rerun, "{engine}: forked rerun diverged");
    }
}
