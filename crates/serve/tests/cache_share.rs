//! Server-level cache behaviour: a concurrent open storm compiles
//! exactly once, cache-hit sessions are observationally identical to
//! cold-compile sessions, and LRU eviction under a tiny capacity only
//! touches unpinned designs.

use scflow::prelude::ServeOptions;
use scflow_serve::Server;

fn open_reply(server: &Server, design: &str, engine: &str) -> String {
    server.handle_line(&format!(
        r#"{{"id":0,"op":"open_session","design":"{design}","engine":"{engine}","coverage":true}}"#
    ))
}

fn session_of(reply: &str) -> String {
    let tag = r#""session":""#;
    let start = reply.find(tag).unwrap_or_else(|| panic!("no session in {reply}")) + tag.len();
    let end = reply[start..].find('"').unwrap() + start;
    reply[start..end].to_owned()
}

fn cache_field(reply: &str) -> String {
    let tag = r#""cache":""#;
    let start = reply.find(tag).unwrap() + tag.len();
    let end = reply[start..].find('"').unwrap() + start;
    reply[start..end].to_owned()
}

/// Drives a fixed stimulus and returns the session's reply transcript
/// (steps, peeks, coverage) — everything after the open reply, so it is
/// directly comparable across sessions.
fn transcript(server: &Server, sid: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, v) in [0x0101u64, 0x7fff, 0x0042, 0xffff].into_iter().enumerate() {
        let r = server.handle_line(&format!(
            r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample","value":"0x{v:x}","width":16}}"#
        ));
        assert!(r.contains(r#""ok":true"#), "{r}");
        let r = server.handle_line(&format!(
            r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample_valid","value":{},"width":1}}"#,
            u64::from(i % 2 == 0)
        ));
        assert!(r.contains(r#""ok":true"#), "{r}");
        out.push(server.handle_line(&format!(
            r#"{{"id":1,"op":"step","session":"{sid}","cycles":3}}"#
        )));
        out.push(server.handle_line(&format!(
            r#"{{"id":1,"op":"peek","session":"{sid}","port":"out_sample"}}"#
        )));
        out.push(server.handle_line(&format!(
            r#"{{"id":1,"op":"peek","session":"{sid}","port":"dbg_state"}}"#
        )));
    }
    out.push(server.handle_line(&format!(
        r#"{{"id":1,"op":"coverage","session":"{sid}"}}"#
    )));
    out
}

#[test]
fn open_storm_compiles_exactly_once() {
    let server = Server::new(&ServeOptions {
        addr: None,
        threads: 16,
        cache_cap: 8,
    });
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| open_reply(&server, "rtl_opt", "gate.fast")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &replies {
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    let st = server.cache().stats();
    assert_eq!(st.compiles, 1, "storm must share one compile: {st:?}");
    assert_eq!(st.misses, 1);
    assert_eq!(st.hits, 7);
    // Exactly one open was the miss; the rest report the shared hit.
    let misses = replies.iter().filter(|r| cache_field(r) == "miss").count();
    assert_eq!(misses, 1);
    assert_eq!(server.sessions().active(), 8);

    // All eight report the same content hash — same shared program.
    let hashes: std::collections::HashSet<_> = replies
        .iter()
        .map(|r| {
            let tag = r#""content_hash":""#;
            let s = r.find(tag).unwrap() + tag.len();
            r[s..s + 18].to_owned()
        })
        .collect();
    assert_eq!(hashes.len(), 1);
}

#[test]
fn hit_session_is_byte_identical_to_cold_session() {
    let server = Server::new(&ServeOptions::default());

    let cold = open_reply(&server, "rtl_opt", "gate.bitpar");
    assert_eq!(cache_field(&cold), "miss");
    let warm = open_reply(&server, "rtl_opt", "gate.bitpar");
    assert_eq!(cache_field(&warm), "hit");

    let cold_log = transcript(&server, &session_of(&cold));
    let warm_log = transcript(&server, &session_of(&warm));
    assert_eq!(cold_log, warm_log, "hit and cold sessions must not differ");

    // And a fresh server (fully cold) agrees byte-for-byte too.
    let fresh = Server::new(&ServeOptions::default());
    let reply = open_reply(&fresh, "rtl_opt", "gate.bitpar");
    let fresh_log = transcript(&fresh, &session_of(&reply));
    assert_eq!(cold_log, fresh_log);
}

#[test]
fn lru_eviction_respects_pinned_sessions() {
    let server = Server::new(&ServeOptions {
        addr: None,
        threads: 8,
        cache_cap: 1,
    });
    // Pin rtl_opt with a live session.
    let pinned = open_reply(&server, "rtl_opt", "gate.fast");
    assert_eq!(cache_field(&pinned), "miss");

    // Cycle two more designs through the single-entry cache, closing
    // each session so its artefact becomes evictable.
    for design in ["rtl_unopt", "vhdl_ref"] {
        let r = open_reply(&server, design, "gate.fast");
        assert_eq!(cache_field(&r), "miss", "{design}");
        let sid = session_of(&r);
        let r = server.handle_line(&format!(r#"{{"id":1,"op":"close","session":"{sid}"}}"#));
        assert!(r.contains(r#""ok":true"#));
    }
    assert!(server.cache().stats().evictions >= 1);

    // The pinned design is still served from cache (its session's Arc
    // protected it from eviction)…
    let again = open_reply(&server, "rtl_opt", "gate.fast");
    assert_eq!(cache_field(&again), "hit");
    // …while an evicted design recompiles.
    let compiles_before = server.cache().stats().compiles;
    let r = open_reply(&server, "rtl_unopt", "gate.fast");
    assert_eq!(cache_field(&r), "miss");
    assert_eq!(server.cache().stats().compiles, compiles_before + 1);
}

#[test]
fn rtl_and_gate_artifacts_do_not_collide() {
    // Same module, different refinement levels: the level-namespaced
    // keys must produce two cache entries, not one.
    let server = Server::new(&ServeOptions::default());
    let a = open_reply(&server, "rtl_opt", "rtl.compiled");
    let b = open_reply(&server, "rtl_opt", "gate.fast");
    assert_eq!(cache_field(&a), "miss");
    assert_eq!(cache_field(&b), "miss");
    assert_eq!(server.cache().stats().compiles, 2);
    assert_eq!(server.cache().len(), 2);
}

#[test]
fn pass_levels_do_not_share_artifacts_or_snapshots() {
    // The same design opened at different `opt` levels is two distinct
    // content addresses: two compiles in the cache, mutually stale
    // snapshots — but byte-identical observable outputs.
    let server = Server::new(&ServeOptions::default());
    let open_opt = |opt: u8| {
        server.handle_line(&format!(
            r#"{{"id":0,"op":"open_session","design":"rtl_opt","engine":"rtl.compiled","opt":{opt}}}"#
        ))
    };
    let plain = open_opt(0);
    let optimized = open_opt(2);
    assert_eq!(cache_field(&plain), "miss");
    assert_eq!(
        cache_field(&optimized),
        "miss",
        "levels must not share a compile: {optimized}"
    );
    assert_eq!(server.cache().stats().compiles, 2);
    let sid_plain = session_of(&plain);
    let sid_opt = session_of(&optimized);

    // Same stimulus, same replies — the passes may not change anything
    // a client can observe.
    for (a, b) in [(&sid_plain, &sid_opt)] {
        for sid in [a, b] {
            let r = server.handle_line(&format!(
                r#"{{"id":1,"op":"poke","session":"{sid}","port":"in_sample","value":"0x1234","width":16}}"#
            ));
            assert!(r.contains(r#""ok":true"#), "{r}");
        }
        for _ in 0..4 {
            let ra = server.handle_line(&format!(
                r#"{{"id":1,"op":"step","session":"{a}","cycles":3}}"#
            ));
            let rb = server.handle_line(&format!(
                r#"{{"id":1,"op":"step","session":"{b}","cycles":3}}"#
            ));
            assert_eq!(ra, rb);
            let pa = server.handle_line(&format!(
                r#"{{"id":1,"op":"peek","session":"{a}","port":"out_sample"}}"#
            ));
            let pb = server.handle_line(&format!(
                r#"{{"id":1,"op":"peek","session":"{b}","port":"out_sample"}}"#
            ));
            assert_eq!(pa, pb);
        }
    }

    // An optimized blob is refused by the unoptimized session…
    let snap = server.handle_line(&format!(r#"{{"id":1,"op":"snapshot","session":"{sid_opt}"}}"#));
    assert!(snap.contains(r#""ok":true"#), "{snap}");
    let tag = r#""snapshot":""#;
    let ss = snap.find(tag).unwrap() + tag.len();
    let se = snap[ss..].find('"').unwrap() + ss;
    let blob = &snap[ss..se];
    let r = server.handle_line(&format!(
        r#"{{"id":1,"op":"restore","session":"{sid_plain}","snapshot":"{blob}"}}"#
    ));
    assert!(
        r.contains("stale_snapshot"),
        "optimized blob must be stale for the plain session: {r}"
    );
    // …while a same-level twin (a cache hit, shared program) accepts it.
    let twin = open_opt(2);
    assert_eq!(cache_field(&twin), "hit");
    let r = server.handle_line(&format!(
        r#"{{"id":1,"op":"restore","session":"{}","snapshot":"{blob}"}}"#,
        session_of(&twin)
    ));
    assert!(r.contains(r#""ok":true"#), "twin must accept the blob: {r}");

    // Out-of-range levels are refused at the protocol boundary.
    let r = server.handle_line(
        r#"{"id":1,"op":"open_session","design":"rtl_opt","engine":"rtl.compiled","opt":3}"#,
    );
    assert!(r.contains("bad_request"), "{r}");
}

#[test]
fn one_gate_artifact_serves_all_gate_engines() {
    // gate.event, gate.fast and gate.bitpar all run the same compiled
    // gate program: three opens, one compile.
    let server = Server::new(&ServeOptions::default());
    for (i, engine) in ["gate.event", "gate.fast", "gate.bitpar"].iter().enumerate() {
        let r = open_reply(&server, "rtl_opt", engine);
        let expect = if i == 0 { "miss" } else { "hit" };
        assert_eq!(cache_field(&r), expect, "{engine}: {r}");
    }
    assert_eq!(server.cache().stats().compiles, 1);
}
