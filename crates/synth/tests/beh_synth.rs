//! Behavioural synthesis integration tests: compile small programs and
//! simulate the emitted FSM + datapath with an interpreted RTL simulation,
//! comparing against a software model — the bit-accuracy check the paper's
//! refinement flow performs at every step.

use scflow_hwtypes::Bv;
use scflow_rtl::{Module, RtlSim};
use scflow_synth::beh::{synthesize_beh, BehOptions, ProgramBuilder, SchedulingMode};
use std::collections::VecDeque;

/// Drives a superstate-mode module: feeds `feeds` into input ports as fast
/// as the DUT accepts them, always-ready on outputs, collects `want` items
/// from `out`, with a cycle budget.
fn run_superstate(
    module: &Module,
    feeds: &mut [(String, VecDeque<Bv>)],
    out: &str,
    want: usize,
    max_cycles: u64,
) -> Vec<Bv> {
    let mut sim = RtlSim::new(module);
    let out_ready = format!("{out}_ready");
    let out_valid = format!("{out}_valid");
    sim.set_input(&out_ready, Bv::bit(true));
    let mut collected = Vec::new();
    for _ in 0..max_cycles {
        // Present data on every input port with pending items.
        for (name, queue) in feeds.iter() {
            let valid = format!("{name}_valid");
            match queue.front() {
                Some(v) => {
                    sim.set_input(name, *v);
                    sim.set_input(&valid, Bv::bit(true));
                }
                None => {
                    sim.set_input(&valid, Bv::zero(1));
                }
            }
        }
        sim.settle();
        // A ready DUT consumes the presented beat on this edge.
        let consumed: Vec<bool> = feeds
            .iter()
            .map(|(name, queue)| {
                !queue.is_empty() && sim.output(&format!("{name}_ready")).any()
            })
            .collect();
        let produced = sim.output(&out_valid).any().then(|| sim.output(out));
        sim.tick();
        for ((_, queue), c) in feeds.iter_mut().zip(consumed) {
            if c {
                queue.pop_front();
            }
        }
        if let Some(v) = produced {
            collected.push(v);
            if collected.len() == want {
                break;
            }
        }
    }
    collected
}

/// `o = i*i + 1` forever.
fn square_plus_one() -> scflow_synth::beh::BehProgram {
    let mut p = ProgramBuilder::new("sq1");
    let i = p.input("i", 8);
    let o = p.output("o", 16);
    let x = p.var("x", 8);
    let y = p.var("y", 16);
    p.read(x, i);
    let sq = p.v(x).sext(16).mul_signed(p.v(x).sext(16));
    p.assign(y, sq);
    let inc = p.v(y).add(p.lit(1, 16));
    p.assign(y, inc);
    let ye = p.v(y);
    p.write(o, ye);
    p.build()
}

#[test]
fn superstate_square_stream() {
    let out = synthesize_beh(&square_plus_one(), &BehOptions::default()).expect("synth");
    let inputs: Vec<i64> = vec![0, 1, 2, -3, 100, -128, 127];
    let mut feeds = [(
        "i".to_owned(),
        inputs.iter().map(|&v| Bv::from_i64(v, 8)).collect::<VecDeque<_>>(),
    )];
    let got = run_superstate(&out.module, &mut feeds, "o", inputs.len(), 500);
    let want: Vec<Bv> = inputs
        .iter()
        .map(|&v| Bv::from_i64(v * v + 1, 16))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn superstate_dut_waits_for_slow_producer() {
    let out = synthesize_beh(&square_plus_one(), &BehOptions::default()).expect("synth");
    let mut sim = RtlSim::new(&out.module);
    sim.set_input("i", Bv::zero(8));
    sim.set_input("i_valid", Bv::zero(1));
    sim.set_input("o_ready", Bv::bit(true));
    // With no valid input the FSM must sit in the read state forever.
    sim.run(50);
    let stuck = sim.output("dbg_state");
    sim.run(7);
    assert_eq!(sim.output("dbg_state"), stuck);
    assert!(sim.output("i_ready").any(), "must be requesting input");
    assert!(!sim.output("o_valid").any());
}

#[test]
fn fixed_cycle_mode_has_strobes_not_handshake() {
    let opts = BehOptions {
        mode: SchedulingMode::FixedCycle,
        ..BehOptions::default()
    };
    let out = synthesize_beh(&square_plus_one(), &opts).expect("synth");
    let m = &out.module;
    assert!(m.port("i_valid").is_none());
    assert!(m.port("o_ready").is_none());
    assert!(m.port("i_strobe").is_some());
    assert!(m.port("o_strobe").is_some());

    // Fixed schedule: the loop has a fixed period; present each input and
    // sample at strobes.
    let mut sim = RtlSim::new(m);
    let inputs = [5i64, -7, 11];
    let mut got = Vec::new();
    let mut iter = inputs.iter();
    let mut current = *iter.next().expect("nonempty");
    sim.set_input("i", Bv::from_i64(current, 8));
    for _ in 0..100 {
        sim.settle();
        let consumed = sim.output("i_strobe").any();
        let produced = sim.output("o_strobe").any().then(|| sim.output("o"));
        sim.tick();
        if let Some(v) = produced {
            got.push(v);
        }
        if consumed {
            if let Some(&n) = iter.next() {
                current = n;
                sim.set_input("i", Bv::from_i64(current, 8));
            }
        }
        if got.len() == inputs.len() {
            break;
        }
    }
    let want: Vec<Bv> = inputs.iter().map(|&v| Bv::from_i64(v * v + 1, 16)).collect();
    assert_eq!(got, want);
}

/// Data-dependent loop: sum = 1 + 2 + ... + n.
fn triangle_sum() -> scflow_synth::beh::BehProgram {
    let mut p = ProgramBuilder::new("tri");
    let n_in = p.input("n", 8);
    let o = p.output("sum", 16);
    let n = p.var("n_v", 8);
    let k = p.var("k", 8);
    let acc = p.var("acc", 16);
    p.read(n, n_in);
    p.assign(acc, p.lit(0, 16));
    p.assign(k, p.lit(1, 8));
    let cond = p.v(k).ule(p.v(n));
    p.while_loop(cond, |b| {
        let add = b.v(acc).add(b.v(k).zext(16));
        b.assign(acc, add);
        let inc = b.v(k).add(b.lit(1, 8));
        b.assign(k, inc);
    });
    let res = p.v(acc);
    p.write(o, res);
    p.build()
}

#[test]
fn while_loop_triangle_numbers() {
    let out = synthesize_beh(&triangle_sum(), &BehOptions::default()).expect("synth");
    let cases = [0u64, 1, 2, 10, 30];
    let mut feeds = [(
        "n".to_owned(),
        cases.iter().map(|&v| Bv::new(v, 8)).collect::<VecDeque<_>>(),
    )];
    let got = run_superstate(&out.module, &mut feeds, "sum", cases.len(), 2000);
    let want: Vec<Bv> = cases
        .iter()
        .map(|&n| Bv::new(n * (n + 1) / 2, 16))
        .collect();
    assert_eq!(got, want);
}

/// MAC over a ROM and a RAM: out = sum(rom[j] * ram[j]), with the RAM
/// first filled from the input — uses branch, loop, memories, multiplier.
fn dot_product() -> scflow_synth::beh::BehProgram {
    let mut p = ProgramBuilder::new("dot");
    let i = p.input("i", 8);
    let o = p.output("dp", 20);
    let rom = p.memory(
        "coef",
        8,
        (0..8u64).map(|k| Bv::new(k + 1, 8)).collect(), // 1..=8
    );
    let ram = p.memory("buf", 8, vec![Bv::zero(8); 8]);
    let j = p.var("j", 4);
    let x = p.var("x", 8);
    let acc = p.var("acc", 20);

    // Fill phase.
    p.assign(j, p.lit(0, 4));
    let fill_cond = p.v(j).ult(p.lit(8, 4));
    p.while_loop(fill_cond, |b| {
        b.read(x, i);
        b.mem_write(ram, b.v(j).slice(2, 0), b.v(x));
        let inc = b.v(j).add(b.lit(1, 4));
        b.assign(j, inc);
    });

    // MAC phase.
    p.assign(acc, p.lit(0, 20));
    p.assign(j, p.lit(0, 4));
    let mac_cond = p.v(j).ult(p.lit(8, 4));
    p.while_loop(mac_cond, |b| {
        let prod = b
            .mem_read(rom, b.v(j).slice(2, 0))
            .zext(20)
            .mul(b.mem_read(ram, b.v(j).slice(2, 0)).zext(20));
        let nacc = b.v(acc).add(prod);
        b.assign(acc, nacc);
        let inc = b.v(j).add(b.lit(1, 4));
        b.assign(j, inc);
    });
    let res = p.v(acc);
    p.write(o, res);
    p.build()
}

#[test]
fn dot_product_with_memories_and_shared_multiplier() {
    let out = synthesize_beh(&dot_product(), &BehOptions::default()).expect("synth");
    assert_eq!(out.report.shared_multipliers, 1);
    // One multiplier in the RTL despite the loop body's multiply.
    assert_eq!(out.module.stats().ops.mul, 1);

    let data: Vec<u64> = vec![3, 0, 5, 2, 7, 1, 4, 6];
    let mut feeds = [(
        "i".to_owned(),
        data.iter().map(|&v| Bv::new(v, 8)).collect::<VecDeque<_>>(),
    )];
    let got = run_superstate(&out.module, &mut feeds, "dp", 1, 4000);
    let want: u64 = data.iter().enumerate().map(|(k, &v)| (k as u64 + 1) * v).sum();
    assert_eq!(got, vec![Bv::new(want, 20)]);
}

#[test]
fn unshared_multipliers_cost_more() {
    let shared = synthesize_beh(&dot_product(), &BehOptions::default()).expect("synth");
    let unshared = synthesize_beh(
        &dot_product(),
        &BehOptions {
            share_resources: false,
            ..BehOptions::default()
        },
    )
    .expect("synth");
    assert!(unshared.module.stats().ops.mul >= shared.module.stats().ops.mul);
    assert_eq!(unshared.report.shared_multipliers, 0);
}

#[test]
fn register_merging_reduces_registers() {
    // Two variables with disjoint lifetimes and equal widths.
    let mut p = ProgramBuilder::new("merge");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let a = p.var("a", 8);
    let b_ = p.var("b", 8);
    p.read(a, i);
    let a1 = p.v(a).add(p.lit(1, 8));
    p.write(o, a1);
    // `a` is dead here; `b` starts fresh.
    p.read(b_, i);
    let b1 = p.v(b_).add(p.lit(2, 8));
    p.write(o, b1);
    let prog = p.build();

    let plain = synthesize_beh(&prog, &BehOptions::default()).expect("synth");
    let merged = synthesize_beh(
        &prog,
        &BehOptions {
            merge_registers: true,
            ..BehOptions::default()
        },
    )
    .expect("synth");
    assert_eq!(plain.report.registers, 2);
    assert_eq!(merged.report.registers, 1);

    // Merged version still computes correctly.
    let vals = [10u64, 20, 30, 40];
    let mut feeds = [(
        "i".to_owned(),
        vals.iter().map(|&v| Bv::new(v, 8)).collect::<VecDeque<_>>(),
    )];
    let got = run_superstate(&merged.module, &mut feeds, "o", 4, 400);
    assert_eq!(
        got,
        vec![
            Bv::new(11, 8),
            Bv::new(22, 8),
            Bv::new(31, 8),
            Bv::new(42, 8)
        ]
    );
}

#[test]
fn if_else_branches() {
    // o = (i < 10) ? i*2 : i - 10
    let mut p = ProgramBuilder::new("br");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let x = p.var("x", 8);
    let y = p.var("y", 8);
    p.read(x, i);
    let c = p.v(x).ult(p.lit(10, 8));
    let dbl = p.v(x).add(p.v(x));
    let sub = p.v(x).sub(p.lit(10, 8));
    p.if_else(
        c,
        |b| b.assign(y, dbl.clone()),
        |b| b.assign(y, sub.clone()),
    );
    let res = p.v(y);
    p.write(o, res);
    let out = synthesize_beh(&p.build(), &BehOptions::default()).expect("synth");

    let vals = [3u64, 9, 10, 200];
    let mut feeds = [(
        "i".to_owned(),
        vals.iter().map(|&v| Bv::new(v, 8)).collect::<VecDeque<_>>(),
    )];
    let got = run_superstate(&out.module, &mut feeds, "o", 4, 400);
    let want: Vec<Bv> = vals
        .iter()
        .map(|&v| {
            if v < 10 {
                Bv::new(v * 2, 8)
            } else {
                Bv::new(v - 10, 8)
            }
        })
        .collect();
    assert_eq!(got, want);
}

#[test]
fn generated_rtl_synthesizes_to_gates() {
    // End-to-end: behavioural program -> RTL -> gates, area/timing sane.
    let out = synthesize_beh(&dot_product(), &BehOptions::default()).expect("beh synth");
    let lib = scflow_gate::CellLibrary::generic_025u();
    let res = scflow_synth::rtl::synthesize(
        &out.module,
        &lib,
        &scflow_synth::rtl::SynthOptions::default(),
    )
    .expect("rtl synth");
    assert!(res.area.total_um2() > 0.0);
    assert!(res.netlist.flop_count() >= out.report.registers);
    assert!(res.timing.meets(40_000), "40 ns clock must be met");
}

#[test]
fn chaining_packs_dependent_assigns_into_one_state() {
    // Three chained adds fit one state under the default depth limit of 3.
    let mut p = ProgramBuilder::new("chain");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let x = p.var("x", 8);
    p.read(x, i);
    let e1 = p.v(x).add(p.lit(1, 8));
    p.assign(x, e1);
    let e2 = p.v(x).add(p.lit(2, 8));
    p.assign(x, e2);
    let res = p.v(x);
    p.write(o, res);
    let out = synthesize_beh(&p.build(), &BehOptions::default()).expect("synth");
    // read state + 1 compute state + write state (+ collapsed gotos).
    assert!(
        out.report.states <= 4,
        "expected tight schedule, got {} states",
        out.report.states
    );
}
