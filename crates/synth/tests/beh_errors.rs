//! Error-path tests for behavioural synthesis: the supported-subset
//! boundaries must be rejected with useful messages, and the schedule
//! report must reflect the program structure.

use scflow_synth::beh::{
    schedule_only, synthesize_beh, BehOptions, ProgramBuilder, SchedulingMode,
};
use scflow_synth::SynthError;

#[test]
fn double_mul_in_one_statement_rejected_when_sharing() {
    let mut p = ProgramBuilder::new("twomul");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let x = p.var("x", 8);
    p.read(x, i);
    // x*x*x needs two multipliers in one statement.
    let e = p.v(x).mul(p.v(x)).mul(p.v(x));
    p.assign(x, e);
    let out = p.v(x);
    p.write(o, out);
    let err = synthesize_beh(&p.build(), &BehOptions::default());
    match err {
        Err(SynthError::Unsupported(msg)) => {
            assert!(msg.contains("multiplier"), "unexpected message: {msg}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn double_mul_allowed_without_sharing() {
    let mut p = ProgramBuilder::new("twomul");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let x = p.var("x", 8);
    p.read(x, i);
    let e = p.v(x).mul(p.v(x)).mul(p.v(x));
    p.assign(x, e);
    let out = p.v(x);
    p.write(o, out);
    let opts = BehOptions {
        share_resources: false,
        ..BehOptions::default()
    };
    let out = synthesize_beh(&p.build(), &opts).expect("unshared multipliers are fine");
    assert!(out.module.stats().ops.mul >= 2);
}

#[test]
fn double_read_of_one_memory_in_one_statement_rejected() {
    let mut p = ProgramBuilder::new("tworead");
    let o = p.output("o", 8);
    let rom = p.memory("rom", 8, (0..4u64).map(|v| scflow_hwtypes::Bv::new(v, 8)).collect());
    let x = p.var("x", 8);
    let e = p
        .mem_read(rom, p.lit(0, 2))
        .add(p.mem_read(rom, p.lit(1, 2)));
    p.assign(x, e);
    let out = p.v(x);
    p.write(o, out);
    let err = synthesize_beh(&p.build(), &BehOptions::default());
    assert!(matches!(err, Err(SynthError::Unsupported(_))));
}

#[test]
fn error_messages_display_cleanly() {
    let e = SynthError::Unsupported("demo".into());
    assert_eq!(e.to_string(), "unsupported construct: demo");
}

#[test]
fn schedule_report_names_variables_and_io() {
    let mut p = ProgramBuilder::new("rep");
    let i = p.input("audio_in", 8);
    let o = p.output("audio_out", 8);
    let x = p.var("samp", 8);
    p.read(x, i);
    let inc = p.v(x).add(p.lit(1, 8));
    p.assign(x, inc);
    let cond = p.v(x).ult(p.lit(100, 8));
    p.while_loop(cond, |b| {
        let dbl = b.v(x).add(b.v(x));
        b.assign(x, dbl);
    });
    let out = p.v(x);
    p.write(o, out);
    let program = p.build();

    let schedule = schedule_only(&program, &BehOptions::default()).expect("schedules");
    let report = schedule.describe(&program);
    assert!(report.contains("read audio_in -> samp"));
    assert!(report.contains("write audio_out"));
    assert!(report.contains("samp <= ..."));
    assert!(report.contains(" | S"), "branch transition shown: {report}");
    // Every state appears exactly once.
    for s in 0..schedule.len() {
        assert!(report.contains(&format!("S{s} ")) || report.contains(&format!("S{s}  ")),
            "state {s} missing from report:\n{report}");
    }
}

#[test]
fn fixed_cycle_schedules_have_no_handshake_dependence() {
    // The same program scheduled both ways has the same state count; only
    // the emitted interface differs.
    let mut p = ProgramBuilder::new("fx");
    let i = p.input("i", 8);
    let o = p.output("o", 8);
    let x = p.var("x", 8);
    p.read(x, i);
    let e = p.v(x).add(p.lit(3, 8));
    p.assign(x, e);
    let out = p.v(x);
    p.write(o, out);
    let program = p.build();

    let a = schedule_only(&program, &BehOptions::default()).expect("s");
    let b = schedule_only(
        &program,
        &BehOptions {
            mode: SchedulingMode::FixedCycle,
            ..BehOptions::default()
        },
    )
    .expect("s");
    assert_eq!(a.len(), b.len());
}
