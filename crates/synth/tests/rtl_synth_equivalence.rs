//! RTL-vs-gate equivalence: every synthesised netlist must reproduce the
//! interpreted RTL behaviour cycle by cycle, with and without the
//! optimisation passes — the bit-accuracy property the paper's refinement
//! verification depends on.

use scflow_gate::{CellLibrary, GateSim};
use scflow_hwtypes::Bv;
use scflow_rtl::{Expr, Module, ModuleBuilder, RtlSim};
use scflow_synth::rtl::{synthesize, SynthOptions};

/// Drives both simulators with the same random inputs and compares every
/// output every cycle.
fn check_equivalence(module: &Module, cycles: u64, seed: u64) {
    let lib = CellLibrary::generic_025u();

    for optimize in [false, true] {
        let opts = SynthOptions {
            optimize,
            insert_scan: true,
        };
        let result = synthesize(module, &lib, &opts).expect("synthesis");
        let mut gate = GateSim::new(&result.netlist, &lib);
        let mut rtl = RtlSim::new(module);
        let mut rng = scflow_testkit::Rng::new(seed);

        // Functional mode (combinational designs get no scan ports).
        if result.netlist.input_port("scan_en").is_some() {
            gate.set_input("scan_en", Bv::zero(1));
            gate.set_input("scan_in", Bv::zero(1));
        }
        if result.netlist.input_port("test_mode").is_some() {
            gate.set_input("test_mode", Bv::zero(1));
        }

        let inputs: Vec<(String, u32)> = module
            .ports()
            .iter()
            .filter(|p| p.dir == scflow_rtl::PortDir::Input)
            .map(|p| (p.name.clone(), p.width))
            .collect();
        let outputs: Vec<String> = module
            .ports()
            .iter()
            .filter(|p| p.dir == scflow_rtl::PortDir::Output)
            .map(|p| p.name.clone())
            .collect();

        for cycle in 0..cycles {
            for (name, width) in &inputs {
                let v = Bv::new(rng.next_u64(), *width);
                gate.set_input(name, v);
                rtl.set_input(name, v);
            }
            gate.tick();
            rtl.tick();
            for out in &outputs {
                assert_eq!(
                    gate.output(out),
                    Some(rtl.output(out)),
                    "output `{out}` diverged at cycle {cycle} (optimize={optimize})"
                );
            }
        }
    }
}

#[test]
fn accumulator_equivalence() {
    let mut b = ModuleBuilder::new("acc");
    let din = b.input("din", 8);
    let en = b.input("en", 1);
    let acc = b.reg("acc", 8, Bv::zero(8));
    let sum = b.n(acc).add(b.n(din));
    b.set_next(acc, b.n(en).mux(sum, b.n(acc)));
    b.output("q", b.n(acc));
    check_equivalence(&b.build().expect("valid"), 40, 1);
}

#[test]
fn arithmetic_soup_equivalence() {
    // Exercises add/sub/mul/compares/shifts/mux/extensions in one design.
    let mut b = ModuleBuilder::new("soup");
    let a = b.input("a", 6);
    let c = b.input("b", 6);
    let s = b.input("s", 3);
    let sum = b.comb("sum", b.n(a).add(b.n(c)));
    let dif = b.comb("dif", b.n(a).sub(b.n(c)));
    let prd = b.comb("prd", b.n(a).sext(12).mul_signed(b.n(c).sext(12)));
    let ltu = b.comb("ltu", b.n(a).ult(b.n(c)));
    let lts = b.comb("lts", b.n(a).slt(b.n(c)));
    let shl = b.comb("shl", b.n(a).shl(b.n(s).zext(3)));
    let shr = b.comb("shr", b.n(a).shr(b.n(s)));
    let sar = b.comb("sar", b.n(a).sar(b.n(s)));
    let pick = b.comb("pick", b.n(ltu).mux(b.n(sum), b.n(dif)));
    b.output("o_sum", b.n(pick));
    b.output("o_prd", b.n(prd));
    b.output("o_lts", b.n(lts));
    b.output("o_shl", b.n(shl));
    b.output("o_shr", b.n(shr));
    b.output("o_sar", b.n(sar));
    b.output(
        "o_red",
        b.n(a).red_or().concat(b.n(a).red_and()).concat(b.n(a).red_xor()),
    );
    b.output("o_eqne", b.n(a).eq(b.n(c)).concat(b.n(a).ne(b.n(c))));
    b.output("o_ules", b.n(a).ule(b.n(c)).concat(b.n(a).sle(b.n(c))));
    check_equivalence(&b.build().expect("valid"), 60, 2);
}

#[test]
fn memory_design_equivalence() {
    // Ring buffer plus ROM lookup — the SRC's storage pattern.
    let mut b = ModuleBuilder::new("ringrom");
    let din = b.input("din", 8);
    let push = b.input("push", 1);
    let raddr = b.input("raddr", 3);
    let wptr = b.reg("wptr", 3, Bv::zero(3));
    let ram = b.memory("ram", 8, vec![Bv::zero(8); 8]);
    b.mem_write(ram, b.n(wptr), b.n(din), b.n(push));
    b.set_next(
        wptr,
        b.n(push).mux(b.n(wptr).add(Expr::lit(1, 3)), b.n(wptr)),
    );
    let rom = b.memory(
        "rom",
        8,
        (0..8u64).map(|i| Bv::new(i * 13 + 1, 8)).collect(),
    );
    let ram_out = b.comb("ram_out", Expr::read_mem(ram, b.n(raddr), 8));
    let rom_out = b.comb("rom_out", Expr::read_mem(rom, b.n(raddr), 8));
    b.output("sum", b.n(ram_out).add(b.n(rom_out)));
    check_equivalence(&b.build().expect("valid"), 50, 3);
}

#[test]
fn counter_fsm_equivalence() {
    // Tiny 3-state FSM: IDLE -> RUN -> DONE -> IDLE controlled by `go`.
    let mut b = ModuleBuilder::new("fsm");
    let go = b.input("go", 1);
    let state = b.reg("state", 2, Bv::zero(2));
    let cnt = b.reg("cnt", 4, Bv::zero(4));
    let is_idle = b.comb("is_idle", b.n(state).eq(Expr::lit(0, 2)));
    let is_run = b.comb("is_run", b.n(state).eq(Expr::lit(1, 2)));
    let cnt_done = b.comb("cnt_done", b.n(cnt).eq(Expr::lit(15, 4)));
    let next_state = b.comb(
        "next_state",
        b.n(is_idle).mux(
            b.n(go).mux(Expr::lit(1, 2), Expr::lit(0, 2)),
            b.n(is_run).mux(
                b.n(cnt_done).mux(Expr::lit(2, 2), Expr::lit(1, 2)),
                Expr::lit(0, 2),
            ),
        ),
    );
    b.set_next(state, b.n(next_state));
    b.set_next(
        cnt,
        b.n(is_run).mux(b.n(cnt).add(Expr::lit(1, 4)), Expr::lit(0, 4)),
    );
    b.output("st", b.n(state));
    b.output("c", b.n(cnt));
    check_equivalence(&b.build().expect("valid"), 80, 4);
}

#[test]
fn optimization_never_increases_area() {
    let mut b = ModuleBuilder::new("redundant");
    let a = b.input("a", 8);
    // Deliberately wasteful: x ^ 0, y & 1s, double negation, duplicate adds.
    let x = b.comb("x", b.n(a).xor(Expr::lit(0, 8)));
    let y = b.comb("y", b.n(x).and(Expr::lit(0xFF, 8)));
    let z = b.comb("z", b.n(y).not().not());
    let s1 = b.comb("s1", b.n(z).add(b.n(a)));
    let s2 = b.comb("s2", b.n(z).add(b.n(a))); // duplicate of s1
    b.output("o", b.n(s1).xor(b.n(s2)));
    let m = b.build().expect("valid");
    let lib = CellLibrary::generic_025u();
    let unopt = synthesize(
        &m,
        &lib,
        &SynthOptions {
            optimize: false,
            insert_scan: false,
        },
    )
    .expect("synth");
    let opt = synthesize(
        &m,
        &lib,
        &SynthOptions {
            optimize: true,
            insert_scan: false,
        },
    )
    .expect("synth");
    assert!(opt.area.total_um2() < unopt.area.total_um2());
    // x ^ x folds to constant zero: almost everything disappears.
    assert!(opt.netlist.instances().len() <= 2);
}

#[test]
fn duplicate_registers_are_merged() {
    let mut b = ModuleBuilder::new("dupregs");
    let a = b.input("a", 1);
    let r1 = b.reg("r1", 1, Bv::zero(1));
    let r2 = b.reg("r2", 1, Bv::zero(1));
    b.set_next(r1, b.n(a));
    b.set_next(r2, b.n(a));
    b.output("o", b.n(r1).xor(b.n(r2)));
    let m = b.build().expect("valid");
    let lib = CellLibrary::generic_025u();
    let opt = synthesize(
        &m,
        &lib,
        &SynthOptions {
            optimize: true,
            insert_scan: false,
        },
    )
    .expect("synth");
    // r1 == r2 always, so o == 0 and everything sweeps away.
    assert_eq!(opt.netlist.flop_count(), 0);
}

#[test]
fn double_read_site_rejected() {
    let mut b = ModuleBuilder::new("tworeads");
    let a1 = b.input("a1", 2);
    let a2 = b.input("a2", 2);
    let rom = b.memory("rom", 4, (0..4u64).map(|i| Bv::new(i, 4)).collect());
    let r1 = b.comb("r1", Expr::read_mem(rom, b.n(a1), 4));
    let r2 = b.comb("r2", Expr::read_mem(rom, b.n(a2), 4));
    b.output("o", b.n(r1).add(b.n(r2)));
    let m = b.build().expect("valid");
    let lib = CellLibrary::generic_025u();
    let err = synthesize(&m, &lib, &SynthOptions::default());
    assert!(err.is_err());
}

#[test]
fn timing_meets_forty_ns_for_moderate_datapath() {
    // An 18x18 multiply-accumulate — the SRC's widest datapath element.
    let mut b = ModuleBuilder::new("mac");
    let x = b.input("x", 18);
    let y = b.input("y", 18);
    let acc = b.reg("acc", 24, Bv::zero(24));
    let prod = b.comb("prod", b.n(x).sext(24).mul_signed(b.n(y).sext(24)));
    b.set_next(acc, b.n(acc).add(b.n(prod)));
    b.output("q", b.n(acc));
    let m = b.build().expect("valid");
    let lib = CellLibrary::generic_025u();
    let r = synthesize(&m, &lib, &SynthOptions::default()).expect("synth");
    // The paper: "the timing goal could be easily achieved by all
    // implementations" at 40 ns.
    assert!(
        r.timing.meets(40_000),
        "critical path {} ps exceeds 40 ns",
        r.timing.critical_path_ps
    );
}
