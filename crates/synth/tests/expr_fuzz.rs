//! Property-based equivalence fuzzing of the technology mapper: random
//! combinational expression trees are synthesised to gates (with and
//! without optimisation) and compared against the interpreted RTL
//! semantics on random input vectors.
//!
//! The expression generator is a hand-rolled `scflow_testkit` strategy —
//! recursive structures don't need combinator support, just an impl of
//! `Strategy` whose `shrink` proposes same-width subtrees.

use scflow_gate::{CellLibrary, GateSim};
use scflow_hwtypes::Bv;
use scflow_rtl::{Expr, ModuleBuilder, NetId, RtlSim};
use scflow_synth::rtl::{synthesize, SynthOptions};
use scflow_testkit::prop::{check_with, ints, vecs, Config, Strategy};
use scflow_testkit::{prop_assert, prop_assert_eq, Rng};

/// Input port shapes available to generated expressions.
const INPUTS: [(&str, u32); 5] = [("a", 8), ("b", 8), ("c", 16), ("d", 1), ("e", 4)];

/// A leaf: literal, or an input net adapted to `width`.
fn gen_leaf(rng: &mut Rng, width: u32) -> Expr {
    if rng.bool() {
        Expr::lit(rng.next_u64(), width)
    } else {
        let i = rng.index(INPUTS.len());
        let (_, w) = INPUTS[i];
        let net = Expr::net(NetId(i), w);
        if w >= width {
            net.slice(width - 1, 0)
        } else {
            net.zext(width)
        }
    }
}

fn gen_expr(rng: &mut Rng, width: u32, depth: u32) -> Expr {
    if depth == 0 || rng.chance(0.15) {
        return gen_leaf(rng, width);
    }
    let d = depth - 1;
    match rng.index(21) {
        0 => gen_expr(rng, width, d).add(gen_expr(rng, width, d)),
        1 => gen_expr(rng, width, d).sub(gen_expr(rng, width, d)),
        2 => gen_expr(rng, width, d).mul(gen_expr(rng, width, d)),
        3 => gen_expr(rng, width, d).mul_signed(gen_expr(rng, width, d)),
        4 => gen_expr(rng, width, d).and(gen_expr(rng, width, d)),
        5 => gen_expr(rng, width, d).or(gen_expr(rng, width, d)),
        6 => gen_expr(rng, width, d).xor(gen_expr(rng, width, d)),
        7 => gen_expr(rng, width, d).not(),
        8 => gen_expr(rng, width, d).neg(),
        // comparisons and reductions re-widened to the target width
        9 => gen_expr(rng, width, d).ult(gen_expr(rng, width, d)).zext(width),
        10 => gen_expr(rng, width, d).slt(gen_expr(rng, width, d)).zext(width),
        11 => gen_expr(rng, width, d).eq(gen_expr(rng, width, d)).zext(width),
        12 => gen_expr(rng, width, d).sle(gen_expr(rng, width, d)).zext(width),
        13 => gen_expr(rng, width, d).red_or().zext(width),
        14 => gen_expr(rng, width, d).red_xor().zext(width),
        // dynamic shifts (amount from a narrow subtree)
        15 => gen_expr(rng, width, d).shl(gen_expr(rng, 3, d)),
        16 => gen_expr(rng, width, d).shr(gen_expr(rng, 3, d)),
        17 => gen_expr(rng, width, d).sar(gen_expr(rng, 3, d)),
        // mux with a 1-bit condition
        18 => gen_expr(rng, 1, d).mux(gen_expr(rng, width, d), gen_expr(rng, width, d)),
        // width play: extend then slice back
        19 => gen_expr(rng, width, d).sext(width + 4).slice(width - 1, 0),
        _ => gen_expr(rng, 3, d).concat(gen_expr(rng, 5, d)).zext(width),
    }
}

/// Direct subexpressions of a node.
fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Const(_) | Expr::Net(_, _) => vec![],
        Expr::Unary(_, a) | Expr::Slice(a, _, _) | Expr::Zext(a, _) | Expr::Sext(a, _) => {
            vec![a]
        }
        Expr::Binary(_, a, b) | Expr::Concat(a, b) => vec![a, b],
        Expr::Mux(c, t, f) => vec![c, t, f],
        Expr::ReadMem(_, a, _) => vec![a],
    }
}

/// Strategy over expression trees of a fixed result width.
struct ExprStrategy {
    width: u32,
    depth: u32,
}

impl Strategy for ExprStrategy {
    type Value = Expr;

    fn generate(&self, rng: &mut Rng) -> Expr {
        gen_expr(rng, self.width, self.depth)
    }

    fn shrink(&self, v: &Expr) -> Vec<Expr> {
        // A failing tree shrinks to any same-width subtree, or to a trivial
        // leaf — enough to cut a counterexample down to the offending op.
        let mut out = vec![Expr::lit(0, self.width)];
        let mut stack = vec![v];
        while let Some(e) = stack.pop() {
            for child in children(e) {
                if child.width() == self.width && child != v {
                    out.push(child.clone());
                }
                stack.push(child);
            }
            if out.len() > 24 {
                break;
            }
        }
        out
    }
}

fn build_module(expr: &Expr) -> scflow_rtl::Module {
    let mut b = ModuleBuilder::new("fuzz");
    for (name, w) in INPUTS {
        b.input(name, w);
    }
    b.output("o", expr.clone());
    b.build().expect("generated module is valid")
}

#[test]
fn synthesized_gates_match_interpreted_rtl() {
    let strategy = (
        ExprStrategy { width: 8, depth: 3 },
        vecs(ints(0u64..=u64::MAX), 20..=20),
    );
    check_with(
        &Config::from_env().with_cases(48),
        "synthesized gates match interpreted RTL",
        &strategy,
        |(expr, flat_vectors)| {
            let module = build_module(expr);
            let lib = CellLibrary::generic_025u();
            for optimize in [false, true] {
                let result = synthesize(
                    &module,
                    &lib,
                    &SynthOptions {
                        optimize,
                        insert_scan: false,
                    },
                )
                .expect("synthesis");
                let mut gate = GateSim::new(&result.netlist, &lib);
                let mut rtl = RtlSim::new(&module);
                for v in flat_vectors.chunks(INPUTS.len()) {
                    for (i, (name, w)) in INPUTS.iter().enumerate() {
                        let bv = Bv::new(v[i], *w);
                        gate.set_input(name, bv);
                        rtl.set_input(name, bv);
                    }
                    gate.settle();
                    rtl.settle();
                    prop_assert_eq!(
                        gate.output("o"),
                        Some(rtl.output("o")),
                        "optimize={} expr={:?}",
                        optimize,
                        expr
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn optimization_preserves_port_shape() {
    check_with(
        &Config::from_env().with_cases(48),
        "optimization preserves port shape",
        &ExprStrategy { width: 8, depth: 2 },
        |expr| {
            let module = build_module(expr);
            let lib = CellLibrary::generic_025u();
            let opt = synthesize(
                &module,
                &lib,
                &SynthOptions {
                    optimize: true,
                    insert_scan: false,
                },
            )
            .expect("synthesis");
            let unopt = synthesize(
                &module,
                &lib,
                &SynthOptions {
                    optimize: false,
                    insert_scan: false,
                },
            )
            .expect("synthesis");
            prop_assert_eq!(opt.netlist.inputs().len(), unopt.netlist.inputs().len());
            prop_assert_eq!(opt.netlist.outputs().len(), unopt.netlist.outputs().len());
            prop_assert!(opt.netlist.instances().len() <= unopt.netlist.instances().len());
            Ok(())
        },
    );
}
