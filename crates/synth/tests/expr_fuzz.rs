//! Property-based equivalence fuzzing of the technology mapper: random
//! combinational expression trees are synthesised to gates (with and
//! without optimisation) and compared against the interpreted RTL
//! semantics on random input vectors.

use proptest::prelude::*;
use scflow_gate::{CellLibrary, GateSim};
use scflow_hwtypes::Bv;
use scflow_rtl::{Expr, ModuleBuilder, NetId, RtlSim};
use scflow_synth::rtl::{synthesize, SynthOptions};

/// Input port shapes available to generated expressions.
const INPUTS: [(&str, u32); 5] = [("a", 8), ("b", 8), ("c", 16), ("d", 1), ("e", 4)];

/// A generated expression, with the input-net table fixed by convention
/// (net ids 0..5 in `INPUTS` order).
fn leaf(width: u32) -> BoxedStrategy<Expr> {
    prop_oneof![
        any::<u64>().prop_map(move |v| Expr::lit(v, width)),
        (0usize..INPUTS.len()).prop_map(move |i| {
            let (_, w) = INPUTS[i];
            let net = Expr::net(NetId(i), w);
            if w >= width {
                net.slice(width - 1, 0)
            } else {
                net.zext(width)
            }
        }),
    ]
    .boxed()
}

fn arb_expr(width: u32, depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return leaf(width);
    }
    let sub = move || arb_expr(width, depth - 1);
    let sub_other = move |w: u32| arb_expr(w, depth - 1);
    prop_oneof![
        leaf(width),
        (sub(), sub()).prop_map(|(a, b)| a.add(b)),
        (sub(), sub()).prop_map(|(a, b)| a.sub(b)),
        (sub(), sub()).prop_map(|(a, b)| a.mul(b)),
        (sub(), sub()).prop_map(|(a, b)| a.mul_signed(b)),
        (sub(), sub()).prop_map(|(a, b)| a.and(b)),
        (sub(), sub()).prop_map(|(a, b)| a.or(b)),
        (sub(), sub()).prop_map(|(a, b)| a.xor(b)),
        sub().prop_map(|a| a.not()),
        sub().prop_map(|a| a.neg()),
        // comparisons and reductions re-widened to the target width
        (sub(), sub()).prop_map(move |(a, b)| a.ult(b).zext(width)),
        (sub(), sub()).prop_map(move |(a, b)| a.slt(b).zext(width)),
        (sub(), sub()).prop_map(move |(a, b)| a.eq(b).zext(width)),
        (sub(), sub()).prop_map(move |(a, b)| a.sle(b).zext(width)),
        sub().prop_map(move |a| a.red_or().zext(width)),
        sub().prop_map(move |a| a.red_xor().zext(width)),
        // dynamic shifts (amount from a narrow subtree)
        (sub(), sub_other(3)).prop_map(|(a, s)| a.shl(s)),
        (sub(), sub_other(3)).prop_map(|(a, s)| a.shr(s)),
        (sub(), sub_other(3)).prop_map(|(a, s)| a.sar(s)),
        // mux with a 1-bit condition
        (sub_other(1), sub(), sub()).prop_map(|(c, t, e)| c.mux(t, e)),
        // width play: extend then slice back
        sub().prop_map(move |a| a.sext(width + 4).slice(width - 1, 0)),
        (sub_other(3), sub_other(5)).prop_map(move |(hi, lo)| {
            hi.concat(lo).zext(width)
        }),
    ]
    .boxed()
}

fn build_module(expr: &Expr) -> scflow_rtl::Module {
    let mut b = ModuleBuilder::new("fuzz");
    for (name, w) in INPUTS {
        b.input(name, w);
    }
    b.output("o", expr.clone());
    b.build().expect("generated module is valid")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48, ..ProptestConfig::default()
    })]

    #[test]
    fn synthesized_gates_match_interpreted_rtl(
        expr in arb_expr(8, 3),
        vectors in proptest::collection::vec(any::<[u64; 5]>(), 4),
    ) {
        let module = build_module(&expr);
        let lib = CellLibrary::generic_025u();
        for optimize in [false, true] {
            let result = synthesize(
                &module,
                &lib,
                &SynthOptions { optimize, insert_scan: false },
            ).expect("synthesis");
            let mut gate = GateSim::new(&result.netlist, &lib);
            let mut rtl = RtlSim::new(&module);
            for v in &vectors {
                for (i, (name, w)) in INPUTS.iter().enumerate() {
                    let bv = Bv::new(v[i], *w);
                    gate.set_input(name, bv);
                    rtl.set_input(name, bv);
                }
                gate.settle();
                rtl.settle();
                prop_assert_eq!(
                    gate.output("o"),
                    Some(rtl.output("o")),
                    "optimize={} expr={:?}",
                    optimize,
                    &expr
                );
            }
        }
    }

    #[test]
    fn optimization_preserves_port_shape(expr in arb_expr(8, 2)) {
        let module = build_module(&expr);
        let lib = CellLibrary::generic_025u();
        let opt = synthesize(&module, &lib, &SynthOptions { optimize: true, insert_scan: false })
            .expect("synthesis");
        let unopt = synthesize(&module, &lib, &SynthOptions { optimize: false, insert_scan: false })
            .expect("synthesis");
        prop_assert_eq!(opt.netlist.inputs().len(), unopt.netlist.inputs().len());
        prop_assert_eq!(opt.netlist.outputs().len(), unopt.netlist.outputs().len());
        prop_assert!(opt.netlist.instances().len() <= unopt.netlist.instances().len());
    }
}
