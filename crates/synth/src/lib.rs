//! Synthesis: behavioural and RTL, standing in for the Synopsys CoCentric
//! SystemC Compiler and Design Compiler of the DATE 2004 paper.
//!
//! Two entry points:
//!
//! * [`beh`] — **behavioural synthesis**: a behavioural program
//!   ([`beh::BehProgram`]) is scheduled into control steps (superstate
//!   mode with I/O handshaking, or cycle-fixed mode), operations are bound
//!   to shared functional units, variables are allocated to registers
//!   (conservatively one-per-variable, or lifetime-merged), and an FSM +
//!   datapath is emitted as an RTL [`scflow_rtl::Module`]. These knobs are
//!   exactly the effects the paper attributes to behavioural synthesis:
//!   handshake overhead, pessimistic widths, register over-allocation.
//! * [`rtl`] — **RTL synthesis**: an RTL module is bit-blasted onto the
//!   standard-cell library (ripple adders, array multipliers, barrel
//!   shifters, mux trees), cleaned up by classical netlist optimisation
//!   (constant folding, algebraic simplification, structural CSE, dead-gate
//!   sweep), scan-stitched, and reported (`report_area`, timing).
//!
//! # Example: synthesise a small RTL design
//!
//! ```
//! use scflow_rtl::{ModuleBuilder, Expr};
//! use scflow_gate::CellLibrary;
//! use scflow_synth::rtl::{synthesize, SynthOptions};
//! use scflow_hwtypes::Bv;
//!
//! let mut b = ModuleBuilder::new("inc");
//! let r = b.reg("r", 8, Bv::zero(8));
//! b.set_next(r, b.n(r).add(Expr::lit(1, 8)));
//! b.output("q", b.n(r));
//! let module = b.build()?;
//!
//! let lib = CellLibrary::generic_025u();
//! let result = synthesize(&module, &lib, &SynthOptions::default())?;
//! assert!(result.area.total_um2() > 0.0);
//! assert!(result.timing.meets(40_000)); // the paper's 40 ns clock
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beh;
pub mod rtl;

pub use rtl::{synthesize, SynthError, SynthOptions, SynthResult};
