//! Technology mapping: bit-blasting RTL expressions onto the cell library.
//!
//! Arithmetic uses the classical structural generators a gate-level
//! mapper would instantiate: ripple-carry adders/subtractors, array
//! multipliers, barrel shifters, comparator borrow chains and mux trees.
//! The resulting cell counts are what make relative area between design
//! variants meaningful.

use super::SynthError;
use scflow_gate::{CellKind, GNetId, GateNetlist, NetlistBuilder};
use scflow_rtl::{BinOp, Expr, Module, NetId, PortDir, UnaryOp};
use std::collections::HashMap;

pub(super) fn lower(module: &Module) -> Result<GateNetlist, SynthError> {
    Lowerer::new(module).run()
}

struct Lowerer<'m> {
    m: &'m Module,
    b: NetlistBuilder,
    bits: HashMap<NetId, Vec<GNetId>>,
    /// Per memory: pre-created dout bit nets.
    mem_dout: Vec<Vec<GNetId>>,
    /// Per memory: the lowered read-address bits, captured at the (single)
    /// read site.
    mem_raddr: Vec<Option<Vec<GNetId>>>,
}

impl<'m> Lowerer<'m> {
    fn new(m: &'m Module) -> Self {
        Lowerer {
            m,
            b: NetlistBuilder::new(m.name().to_owned()),
            bits: HashMap::new(),
            mem_dout: Vec::new(),
            mem_raddr: Vec::new(),
        }
    }

    fn run(mut self) -> Result<GateNetlist, SynthError> {
        // Memory dout nets first (read sites may appear anywhere).
        for mem in self.m.memories() {
            let dout = (0..mem.width)
                .map(|i| self.b.net(format!("{}_dout[{i}]", mem.name)))
                .collect();
            self.mem_dout.push(dout);
            self.mem_raddr.push(None);
        }

        // Input ports.
        for p in self.m.ports() {
            if p.dir == PortDir::Input {
                let bits = self.b.input_port(&p.name, p.width);
                self.bits.insert(p.net, bits);
            }
        }

        // Pre-create register Q nets so feedback works.
        for r in self.m.registers() {
            let w = self.m.net_width(r.q);
            let name = self.m.net_name(r.q).to_owned();
            let q: Vec<GNetId> = (0..w).map(|i| self.b.net(format!("{name}[{i}]"))).collect();
            self.bits.insert(r.q, q);
        }

        // Combinational assigns in topological order.
        #[allow(clippy::type_complexity)]
        let order: Vec<(NetId, Expr)> = {
            let assigns: Vec<(NetId, &Expr)> = self.m.assigns().collect();
            // Module stores a precomputed topological order over assigns.
            self.m
                .comb_evaluation_order()
                .iter()
                .map(|&i| (assigns[i].0, assigns[i].1.clone()))
                .collect()
        };
        for (target, expr) in order {
            let bits = self.lower_expr(&expr)?;
            self.bits.insert(target, bits);
        }

        // Registers: lower next exprs and close feedback.
        for r in self.m.registers() {
            let d = self.lower_expr(&r.next)?;
            let q = self.bits[&r.q].clone();
            for (i, (&dbit, &qbit)) in d.iter().zip(q.iter()).enumerate() {
                self.b.dff_onto(dbit, qbit, r.init.get(i as u32));
            }
        }

        // Memory macros: reads captured above, writes lowered now.
        for (mi, mem) in self.m.memories().iter().enumerate() {
            // A memory that is never read gets no read port.
            let raddr = self.mem_raddr[mi].take().unwrap_or_default();
            let (waddr, wdata, wen) = match mem.write_ports.len() {
                0 => (Vec::new(), Vec::new(), None),
                1 => {
                    let wp = &mem.write_ports[0];
                    let waddr = self.lower_expr(&wp.addr)?;
                    let wdata = self.lower_expr(&wp.data)?;
                    let wen = self.lower_expr(&wp.enable)?[0];
                    (waddr, wdata, Some(wen))
                }
                n => {
                    return Err(SynthError::Unsupported(format!(
                        "memory {} has {n} write ports (max 1)",
                        mem.name
                    )))
                }
            };
            let dout = self.mem_dout[mi].clone();
            self.b.memory_onto(
                &mem.name,
                mem.width,
                mem.init.clone(),
                raddr,
                dout,
                waddr,
                wdata,
                wen,
            );
        }

        // Output ports.
        for p in self.m.ports() {
            if p.dir == PortDir::Output {
                let bits = self.bits[&p.net].clone();
                self.b.output_port(&p.name, &bits);
            }
        }

        Ok(self.b.build())
    }

    fn const_bits(&mut self, bits: u64, width: u32) -> Vec<GNetId> {
        (0..width)
            .map(|i| {
                if (bits >> i) & 1 == 1 {
                    self.b.const1()
                } else {
                    self.b.const0()
                }
            })
            .collect()
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Vec<GNetId>, SynthError> {
        Ok(match e {
            Expr::Const(v) => self.const_bits(v.as_u64(), v.width()),
            Expr::Net(id, _) => self.bits[id].clone(),
            Expr::Unary(op, a) => {
                let a = self.lower_expr(a)?;
                match op {
                    UnaryOp::Not => a
                        .iter()
                        .map(|&b| self.b.cell(CellKind::Inv, &[b]))
                        .collect(),
                    UnaryOp::Neg => {
                        // ~a + 1
                        let inv: Vec<GNetId> =
                            a.iter().map(|&b| self.b.cell(CellKind::Inv, &[b])).collect();
                        let one = self.const_bits(1, inv.len() as u32);
                        self.ripple_add(&inv, &one, self.b.const0()).0
                    }
                    UnaryOp::RedAnd => vec![self.reduce(CellKind::And2, &a)],
                    UnaryOp::RedOr => vec![self.reduce(CellKind::Or2, &a)],
                    UnaryOp::RedXor => vec![self.reduce(CellKind::Xor2, &a)],
                }
            }
            Expr::Binary(op, a, b) => {
                let av = self.lower_expr(a)?;
                let bv = self.lower_expr(b)?;
                match op {
                    BinOp::Add => self.ripple_add(&av, &bv, self.b.const0()).0,
                    BinOp::Sub => {
                        let nb: Vec<GNetId> =
                            bv.iter().map(|&x| self.b.cell(CellKind::Inv, &[x])).collect();
                        self.ripple_add(&av, &nb, self.b.const1()).0
                    }
                    // Low-bits of signed and unsigned products are equal at
                    // matched operand/result widths, so one array serves.
                    BinOp::Mul | BinOp::MulS => self.array_mul(&av, &bv),
                    BinOp::And => self.bitwise(CellKind::And2, &av, &bv),
                    BinOp::Or => self.bitwise(CellKind::Or2, &av, &bv),
                    BinOp::Xor => self.bitwise(CellKind::Xor2, &av, &bv),
                    BinOp::Shl => self.barrel(&av, &bv, ShiftKind::Left),
                    BinOp::Shr => self.barrel(&av, &bv, ShiftKind::RightLogic),
                    BinOp::Sar => self.barrel(&av, &bv, ShiftKind::RightArith),
                    BinOp::Eq => {
                        let diffs = self.bitwise(CellKind::Xor2, &av, &bv);
                        let any = self.reduce(CellKind::Or2, &diffs);
                        vec![self.b.cell(CellKind::Inv, &[any])]
                    }
                    BinOp::Ne => {
                        let diffs = self.bitwise(CellKind::Xor2, &av, &bv);
                        vec![self.reduce(CellKind::Or2, &diffs)]
                    }
                    BinOp::Ult => vec![self.unsigned_lt(&av, &bv)],
                    BinOp::Ule => {
                        let gt = self.unsigned_lt(&bv, &av);
                        vec![self.b.cell(CellKind::Inv, &[gt])]
                    }
                    BinOp::Slt => vec![self.signed_lt(&av, &bv)],
                    BinOp::Sle => {
                        let gt = self.signed_lt(&bv, &av);
                        vec![self.b.cell(CellKind::Inv, &[gt])]
                    }
                }
            }
            Expr::Mux(c, t, alt) => {
                let c = self.lower_expr(c)?[0];
                let t = self.lower_expr(t)?;
                let alt = self.lower_expr(alt)?;
                t.iter()
                    .zip(alt.iter())
                    .map(|(&tb, &eb)| self.b.cell(CellKind::Mux2, &[eb, tb, c]))
                    .collect()
            }
            Expr::Slice(a, hi, lo) => {
                let a = self.lower_expr(a)?;
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Expr::Concat(hi, lo) => {
                let h = self.lower_expr(hi)?;
                let mut l = self.lower_expr(lo)?;
                l.extend(h);
                l
            }
            Expr::Zext(a, w) => {
                let mut a = self.lower_expr(a)?;
                a.truncate(*w as usize);
                while a.len() < *w as usize {
                    a.push(self.b.const0());
                }
                a
            }
            Expr::Sext(a, w) => {
                let mut a = self.lower_expr(a)?;
                let msb = *a.last().expect("non-empty");
                a.truncate(*w as usize);
                while a.len() < *w as usize {
                    a.push(msb);
                }
                a
            }
            Expr::ReadMem(mid, addr, _) => {
                let a = self.lower_expr(addr)?;
                if self.mem_raddr[mid.0].is_some() {
                    return Err(SynthError::Unsupported(format!(
                        "memory {} is read at more than one site; route reads \
                         through a single combinational net",
                        self.m.memories()[mid.0].name
                    )));
                }
                self.mem_raddr[mid.0] = Some(a);
                self.mem_dout[mid.0].clone()
            }
        })
    }

    fn bitwise(&mut self, kind: CellKind, a: &[GNetId], b: &[GNetId]) -> Vec<GNetId> {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.b.cell(kind, &[x, y]))
            .collect()
    }

    fn reduce(&mut self, kind: CellKind, bits: &[GNetId]) -> GNetId {
        assert!(!bits.is_empty());
        let mut layer = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.b.cell(kind, &[pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Full-adder cell from basic gates; returns (sum, carry).
    fn full_adder(&mut self, a: GNetId, b: GNetId, cin: GNetId) -> (GNetId, GNetId) {
        let axb = self.b.cell(CellKind::Xor2, &[a, b]);
        let sum = self.b.cell(CellKind::Xor2, &[axb, cin]);
        let t1 = self.b.cell(CellKind::And2, &[axb, cin]);
        let t2 = self.b.cell(CellKind::And2, &[a, b]);
        let cout = self.b.cell(CellKind::Or2, &[t1, t2]);
        (sum, cout)
    }

    /// Ripple-carry addition; returns (sum bits, carry out).
    fn ripple_add(&mut self, a: &[GNetId], b: &[GNetId], cin: GNetId) -> (Vec<GNetId>, GNetId) {
        assert_eq!(a.len(), b.len());
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b.iter()) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Truncated array multiplier: result has the width of the operands.
    fn array_mul(&mut self, a: &[GNetId], b: &[GNetId]) -> Vec<GNetId> {
        assert_eq!(a.len(), b.len());
        let w = a.len();
        // acc starts as the first partial product.
        let mut acc: Vec<GNetId> = a.iter().map(|&x| self.b.cell(CellKind::And2, &[x, b[0]])).collect();
        for (i, &b_bit) in b.iter().enumerate().skip(1) {
            // partial product row i: (a << i) & b[i], truncated to w bits
            let mut pp: Vec<GNetId> = vec![self.b.const0(); i];
            for &a_bit in &a[..w - i] {
                pp.push(self.b.cell(CellKind::And2, &[a_bit, b_bit]));
            }
            acc = self.ripple_add(&acc, &pp, self.b.const0()).0;
        }
        acc
    }

    /// Unsigned a < b via the borrow of a - b.
    fn unsigned_lt(&mut self, a: &[GNetId], b: &[GNetId]) -> GNetId {
        let nb: Vec<GNetId> = b.iter().map(|&x| self.b.cell(CellKind::Inv, &[x])).collect();
        let (_, cout) = self.ripple_add(a, &nb, self.b.const1());
        self.b.cell(CellKind::Inv, &[cout])
    }

    /// Signed a < b: sign of (a - b) corrected for overflow.
    fn signed_lt(&mut self, a: &[GNetId], b: &[GNetId]) -> GNetId {
        let nb: Vec<GNetId> = b.iter().map(|&x| self.b.cell(CellKind::Inv, &[x])).collect();
        let (diff, _) = self.ripple_add(a, &nb, self.b.const1());
        let a_msb = *a.last().expect("non-empty");
        let b_msb = *b.last().expect("non-empty");
        let d_msb = *diff.last().expect("non-empty");
        // overflow = (a_msb ^ b_msb) & (a_msb ^ d_msb); lt = d_msb ^ ov
        let signs_differ = self.b.cell(CellKind::Xor2, &[a_msb, b_msb]);
        let flipped = self.b.cell(CellKind::Xor2, &[a_msb, d_msb]);
        let ov = self.b.cell(CellKind::And2, &[signs_differ, flipped]);
        self.b.cell(CellKind::Xor2, &[d_msb, ov])
    }

    fn barrel(&mut self, a: &[GNetId], amount: &[GNetId], kind: ShiftKind) -> Vec<GNetId> {
        let w = a.len();
        let stages = (usize::BITS - (w - 1).leading_zeros()).max(1); // ceil(log2(w))
        let fill = match kind {
            ShiftKind::Left | ShiftKind::RightLogic => self.b.const0(),
            ShiftKind::RightArith => *a.last().expect("non-empty"),
        };
        let mut cur = a.to_vec();
        for s in 0..stages as usize {
            let Some(&sel) = amount.get(s) else { break };
            let dist = 1usize << s;
            let shifted: Vec<GNetId> = (0..w)
                .map(|i| match kind {
                    ShiftKind::Left => {
                        if i >= dist {
                            cur[i - dist]
                        } else {
                            fill
                        }
                    }
                    ShiftKind::RightLogic | ShiftKind::RightArith => {
                        if i + dist < w {
                            cur[i + dist]
                        } else {
                            fill
                        }
                    }
                })
                .collect();
            cur = cur
                .iter()
                .zip(shifted.iter())
                .map(|(&keep, &sh)| self.b.cell(CellKind::Mux2, &[keep, sh, sel]))
                .collect();
        }
        // Oversized amounts (bits beyond the stages) force the fill value.
        if amount.len() > stages as usize {
            let extra = &amount[stages as usize..];
            let any = self.reduce(CellKind::Or2, extra);
            cur = cur
                .iter()
                .map(|&bit| self.b.cell(CellKind::Mux2, &[bit, fill, any]))
                .collect();
        }
        cur
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    RightLogic,
    RightArith,
}
