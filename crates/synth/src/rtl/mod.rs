//! RTL synthesis: bit-blasting to gates, netlist optimisation, scan,
//! reporting — the Design Compiler analogue.

mod lower;
mod opt;

pub use opt::optimize;

use scflow_gate::{insert_scan_chain, longest_path, AreaReport, CellLibrary, GateNetlist, TimingReport};
use scflow_rtl::Module;
use std::error::Error;
use std::fmt;

/// Errors reported by RTL synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// A construct is outside the supported synthesisable subset.
    Unsupported(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl Error for SynthError {}

/// Knobs for [`synthesize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthOptions {
    /// Run the netlist optimisation passes (constant folding, algebraic
    /// rewrites, CSE, dead-gate sweep). On by default — Design Compiler
    /// always compiles; the paper's "unoptimised" variants differ at the
    /// *source* level, not here.
    pub optimize: bool,
    /// Insert a scan chain after optimisation (the paper includes scan in
    /// every reported area).
    pub insert_scan: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            optimize: true,
            insert_scan: true,
        }
    }
}

/// The output of [`synthesize`].
#[derive(Clone, Debug)]
pub struct SynthResult {
    /// The mapped (and optionally optimised, scan-stitched) netlist.
    pub netlist: GateNetlist,
    /// `report_area` equivalent (memories excluded, scan included).
    pub area: AreaReport,
    /// Longest-path timing report.
    pub timing: TimingReport,
}

/// Synthesises an RTL module to a gate-level netlist against `lib`.
///
/// Pipeline: bit-blast ([`lower`](self)) → optimisation passes → scan
/// insertion → area/timing reports.
///
/// # Errors
///
/// Returns [`SynthError::Unsupported`] when the module uses more than one
/// combinational read site per memory (the generated-macro restriction).
pub fn synthesize(
    module: &Module,
    lib: &CellLibrary,
    opts: &SynthOptions,
) -> Result<SynthResult, SynthError> {
    let mapped = lower::lower(module)?;
    let cleaned = if opts.optimize {
        optimize(&mapped)
    } else {
        mapped
    };
    let final_nl = if opts.insert_scan {
        insert_scan_chain(&cleaned)
    } else {
        cleaned
    };
    let area = final_nl.area_report(lib);
    let timing = longest_path(&final_nl, lib);
    Ok(SynthResult {
        netlist: final_nl,
        area,
        timing,
    })
}
