//! Netlist optimisation: constant folding, algebraic simplification,
//! structural CSE, register merging/sweeping, dead-gate elimination.
//!
//! These are the always-on cleanups a logic-synthesis `compile` performs;
//! the paper's "unoptimised" design variants differ in their *source*
//! structure, which these passes preserve (a redundant but live register
//! stays; only literal duplicates and constants are swept).

use scflow_gate::{CellKind, GNetId, GateNetlist, NetlistBuilder};
use scflow_hwtypes::Logic;
use std::collections::HashMap;

/// What an original net resolves to after simplification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Val {
    Const(bool),
    /// Points at a representative original net (root of an alias chain).
    Net(GNetId),
}

/// Runs the optimisation pipeline to a fixed point (bounded).
pub fn optimize(nl: &GateNetlist) -> GateNetlist {
    let mut cur = one_pass(nl);
    for _ in 0..4 {
        let next = one_pass(&cur);
        if next.instances().len() == cur.instances().len() {
            return next;
        }
        cur = next;
    }
    cur
}

fn one_pass(nl: &GateNetlist) -> GateNetlist {
    let n = nl.net_count();

    // --- 1. Forward simplification over combinational gates ------------
    // resolution[net] = what the net's value is, if simplified.
    let mut val: Vec<Val> = (0..n).map(|i| Val::Net(GNetId(i))).collect();
    val[nl.const0().0] = Val::Const(false);
    val[nl.const1().0] = Val::Const(true);

    let resolve = |val: &[Val], mut id: GNetId| -> Val {
        loop {
            match val[id.0] {
                Val::Net(next) if next != id => id = next,
                v @ Val::Const(_) => return v,
                _ => return Val::Net(id),
            }
        }
    };

    // Producer info for kept gates: output net -> (kind, resolved inputs).
    let mut producer: HashMap<GNetId, (CellKind, Vec<Val>)> = HashMap::new();
    // Structural hash for CSE.
    let mut cse: HashMap<(CellKind, Vec<Val>), GNetId> = HashMap::new();
    // Whether each instance survives this pass.
    let mut keep = vec![false; nl.instances().len()];

    for (idx, inst) in topo_comb(nl) {
        let ins: Vec<Val> = inst.inputs.iter().map(|&i| resolve(&val, i)).collect();
        if let Some(v) = simplify(inst.kind, &ins, &producer) {
            val[inst.output.0] = v;
            continue;
        }
        // CSE.
        let key = (inst.kind, ins.clone());
        if let Some(&existing) = cse.get(&key) {
            val[inst.output.0] = Val::Net(existing);
            continue;
        }
        cse.insert(key, inst.output);
        producer.insert(inst.output, (inst.kind, ins));
        keep[idx] = true;
    }

    // --- 2. Flop constant-sweep and duplicate merging -------------------
    // A flop whose D resolves to a constant equal to its init is constant.
    // Flops with identical (D, init) merge.
    let mut flop_cse: HashMap<(Val, bool), GNetId> = HashMap::new();
    for (idx, inst) in nl.instances().iter().enumerate() {
        if !inst.kind.is_sequential() {
            continue;
        }
        // Scan flops have extra pins; only plain DFFs participate.
        if inst.kind != CellKind::Dff {
            keep[idx] = true;
            continue;
        }
        let d = resolve(&val, inst.inputs[0]);
        let init = inst.init.unwrap_or(false);
        if let Val::Const(c) = d {
            if c == init {
                val[inst.output.0] = Val::Const(c);
                continue;
            }
        }
        if let Some(&existing) = flop_cse.get(&(d, init)) {
            val[inst.output.0] = Val::Net(existing);
            continue;
        }
        flop_cse.insert((d, init), inst.output);
        keep[idx] = true;
    }

    // --- 3. Liveness from outputs and memory pins ------------------------
    let mut live_net = vec![false; n];
    let mut stack: Vec<GNetId> = Vec::new();
    let mark = |stack: &mut Vec<GNetId>, val: &[Val], id: GNetId| {
        if let Val::Net(root) = resolve(val, id) {
            stack.push(root);
        }
    };
    for (_, bits) in nl.outputs() {
        for &b in bits {
            mark(&mut stack, &val, b);
        }
    }
    for mem in nl.memories() {
        for &b in mem
            .raddr
            .iter()
            .chain(&mem.waddr)
            .chain(&mem.wdata)
            .chain(mem.wen.as_ref())
        {
            mark(&mut stack, &val, b);
        }
    }
    // driver lookup: output net -> instance index (kept only)
    let mut driver: HashMap<GNetId, usize> = HashMap::new();
    for (idx, inst) in nl.instances().iter().enumerate() {
        if keep[idx] {
            driver.insert(inst.output, idx);
        }
    }
    let mut live_inst = vec![false; nl.instances().len()];
    while let Some(id) = stack.pop() {
        if live_net[id.0] {
            continue;
        }
        live_net[id.0] = true;
        if let Some(&idx) = driver.get(&id) {
            if !live_inst[idx] {
                live_inst[idx] = true;
                for &i in &nl.instances()[idx].inputs {
                    mark(&mut stack, &val, i);
                }
            }
        }
    }

    // --- 4. Rebuild ------------------------------------------------------
    let mut b = NetlistBuilder::new(nl.name().to_owned());
    let mut new_net: HashMap<GNetId, GNetId> = HashMap::new();
    new_net.insert(nl.const0(), b.const0());
    new_net.insert(nl.const1(), b.const1());

    // Input ports keep their shape.
    for (name, bits) in nl.inputs() {
        let nb = b.input_port(name, bits.len() as u32);
        for (&old, new) in bits.iter().zip(nb) {
            new_net.insert(old, new);
        }
    }

    // Pre-create nets for live kept instance outputs and memory douts.
    for (idx, inst) in nl.instances().iter().enumerate() {
        if keep[idx] && live_inst[idx] {
            let name = format!("n{}", inst.output.0);
            let id = b.net(name);
            new_net.insert(inst.output, id);
        }
    }
    let mut mem_new_dout: Vec<Vec<GNetId>> = Vec::new();
    for mem in nl.memories() {
        let dout: Vec<GNetId> = mem
            .dout
            .iter()
            .enumerate()
            .map(|(i, &old)| {
                let id = b.net(format!("{}_dout[{i}]", mem.name));
                new_net.insert(old, id);
                id
            })
            .collect();
        mem_new_dout.push(dout);
    }

    let lookup = |b: &NetlistBuilder, new_net: &HashMap<GNetId, GNetId>, v: Val| -> GNetId {
        match v {
            Val::Const(false) => b.const0(),
            Val::Const(true) => b.const1(),
            Val::Net(id) => *new_net
                .get(&id)
                .unwrap_or_else(|| panic!("unmapped net {}", id.0)),
        }
    };

    // Place live instances (pre-created outputs make order irrelevant).
    for (idx, inst) in nl.instances().iter().enumerate() {
        if !(keep[idx] && live_inst[idx]) {
            continue;
        }
        let ins: Vec<GNetId> = inst
            .inputs
            .iter()
            .map(|&i| lookup(&b, &new_net, resolve(&val, i)))
            .collect();
        let out = new_net[&inst.output];
        if inst.kind.is_sequential() {
            // dff_onto only handles plain DFFs; scan flops are inserted
            // after optimisation, so this is the only sequential kind here.
            b.dff_onto(ins[0], out, inst.init.unwrap_or(false));
        } else {
            b.cell_onto(inst.kind, &ins, out);
        }
    }

    // Memories.
    for (mi, mem) in nl.memories().iter().enumerate() {
        let map_bits = |b: &NetlistBuilder, bits: &[GNetId]| -> Vec<GNetId> {
            bits.iter()
                .map(|&x| lookup(b, &new_net, resolve(&val, x)))
                .collect()
        };
        let raddr = map_bits(&b, &mem.raddr);
        let waddr = map_bits(&b, &mem.waddr);
        let wdata = map_bits(&b, &mem.wdata);
        let wen = mem.wen.map(|w| lookup(&b, &new_net, resolve(&val, w)));
        b.memory_onto(
            &mem.name,
            mem.width,
            mem.init.clone(),
            raddr,
            mem_new_dout[mi].clone(),
            waddr,
            wdata,
            wen,
        );
    }

    // Output ports.
    for (name, bits) in nl.outputs() {
        let nb: Vec<GNetId> = bits
            .iter()
            .map(|&x| lookup(&b, &new_net, resolve(&val, x)))
            .collect();
        b.output_port(name, &nb);
    }

    b.build()
}

/// Topological order over combinational instances (flops are roots).
fn topo_comb(nl: &GateNetlist) -> Vec<(usize, &scflow_gate::Instance)> {
    let comb: Vec<usize> = nl
        .instances()
        .iter()
        .enumerate()
        .filter(|(_, i)| !i.kind.is_sequential())
        .map(|(i, _)| i)
        .collect();
    let mut driver: HashMap<GNetId, usize> = HashMap::new();
    for (pos, &idx) in comb.iter().enumerate() {
        driver.insert(nl.instances()[idx].output, pos);
    }
    let mut indeg = vec![0usize; comb.len()];
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); comb.len()];
    for (pos, &idx) in comb.iter().enumerate() {
        for i in &nl.instances()[idx].inputs {
            if let Some(&d) = driver.get(i) {
                deps[d].push(pos);
                indeg[pos] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..comb.len()).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(comb.len());
    while let Some(pos) = ready.pop() {
        order.push((comb[pos], &nl.instances()[comb[pos]]));
        for &j in &deps[pos] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    assert_eq!(order.len(), comb.len(), "combinational cycle");
    order
}

/// Tries to simplify a gate to a constant or an alias of one input.
fn simplify(
    kind: CellKind,
    ins: &[Val],
    producer: &HashMap<GNetId, (CellKind, Vec<Val>)>,
) -> Option<Val> {
    // Full constant folding through the cell's logic function.
    let logics: Vec<Logic> = ins
        .iter()
        .map(|v| match v {
            Val::Const(c) => Logic::from_bool(*c),
            Val::Net(_) => Logic::X,
        })
        .collect();
    if let Some(b) = kind.eval(&logics).to_bool() {
        return Some(Val::Const(b));
    }

    match kind {
        CellKind::Buf => Some(ins[0]),
        CellKind::Inv => {
            // INV(INV(x)) = x
            if let Val::Net(id) = ins[0] {
                if let Some((CellKind::Inv, inner)) = producer.get(&id) {
                    return Some(inner[0]);
                }
            }
            None
        }
        CellKind::And2 => match (ins[0], ins[1]) {
            (Val::Const(true), other) | (other, Val::Const(true)) => Some(other),
            (a, b) if a == b => Some(a),
            _ => None,
        },
        CellKind::Or2 => match (ins[0], ins[1]) {
            (Val::Const(false), other) | (other, Val::Const(false)) => Some(other),
            (a, b) if a == b => Some(a),
            _ => None,
        },
        CellKind::Xor2 => match (ins[0], ins[1]) {
            (Val::Const(false), other) | (other, Val::Const(false)) => Some(other),
            (a, b) if a == b => Some(Val::Const(false)),
            _ => None,
        },
        CellKind::Xnor2 => match (ins[0], ins[1]) {
            (a, b) if a == b => Some(Val::Const(true)),
            _ => None,
        },
        CellKind::Mux2 => {
            // [a, b, sel]: sel ? b : a
            match ins[2] {
                Val::Const(false) => Some(ins[0]),
                Val::Const(true) => Some(ins[1]),
                _ if ins[0] == ins[1] => Some(ins[0]),
                _ => None,
            }
        }
        _ => None,
    }
}
