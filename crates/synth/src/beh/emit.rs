//! Emission: FSM + datapath RTL from a schedule and an allocation.

use super::alloc::Allocation;
use super::ir::{BExpr, BehProgram, PortDir};
use super::sched::{Io, Next, Schedule};
use super::{BehOptions, BehReport, BehSynthOutput, SchedulingMode};
use crate::SynthError;
use scflow_hwtypes::{bits_for, Bv};
use scflow_rtl::{Expr, MemoryId, ModuleBuilder, NetId};
use std::collections::HashMap;

pub(super) fn emit(
    program: &BehProgram,
    schedule: &Schedule,
    alloc: &Allocation,
    opts: &BehOptions,
) -> Result<BehSynthOutput, SynthError> {
    let mut e = Emitter::new(program, schedule, alloc, opts);
    e.run()
}

struct Emitter<'a> {
    p: &'a BehProgram,
    s: &'a Schedule,
    alloc: &'a Allocation,
    opts: &'a BehOptions,
    b: ModuleBuilder,
    sbits: u32,
    state_net: NetId,
    st_eq: Vec<NetId>,
    reg_net: Vec<NetId>,
    in_data: HashMap<usize, NetId>,
    in_valid: HashMap<usize, NetId>,
    out_ready: HashMap<usize, NetId>,
    // Shared multiplier.
    mul_wire: Option<(NetId, u32)>,
    mul_sites: Vec<(usize, Expr, Expr)>,
    // Memories (always a single shared read site each).
    mems_rtl: Vec<MemoryId>,
    mem_rdata: Vec<NetId>,
    mem_read_sites: Vec<Vec<(usize, Expr)>>,
    cur_state: usize,
}

impl<'a> Emitter<'a> {
    fn new(
        p: &'a BehProgram,
        s: &'a Schedule,
        alloc: &'a Allocation,
        opts: &'a BehOptions,
    ) -> Self {
        let nstates = s.states.len().max(1);
        let sbits = bits_for((nstates - 1) as u64);
        Emitter {
            p,
            s,
            alloc,
            opts,
            b: ModuleBuilder::new(p.name.clone()),
            sbits,
            state_net: NetId(0),
            st_eq: Vec::new(),
            reg_net: Vec::new(),
            in_data: HashMap::new(),
            in_valid: HashMap::new(),
            out_ready: HashMap::new(),
            mul_wire: None,
            mul_sites: Vec::new(),
            mems_rtl: Vec::new(),
            mem_rdata: Vec::new(),
            mem_read_sites: vec![Vec::new(); p.mems.len()],
            cur_state: 0,
        }
    }

    fn run(&mut self) -> Result<BehSynthOutput, SynthError> {
        self.declare_ports();
        self.declare_state_machine();
        self.declare_registers();
        self.declare_memories();
        self.declare_shared_multiplier();

        // Translate all state content, collecting shared-unit sites and
        // per-register transfer lists.
        let mut reg_actions: Vec<Vec<(usize, Expr, Option<Expr>)>> =
            vec![Vec::new(); self.alloc.register_count()];
        let mut out_sites: HashMap<usize, Vec<(usize, Expr)>> = HashMap::new();
        let mut in_read_states: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut mem_write_sites: Vec<Vec<(usize, Expr, Expr)>> =
            vec![Vec::new(); self.p.mems.len()];
        let mut transitions: Vec<Expr> = Vec::with_capacity(self.s.states.len());

        for (si, st) in self.s.states.iter().enumerate() {
            self.cur_state = si;
            for (v, e) in &st.actions {
                let te = self.tx(e);
                reg_actions[self.alloc.reg_of[v.0]].push((si, te, None));
            }
            for (m, a, d) in &st.mem_writes {
                let ta = self.tx(a);
                let td = self.tx(d);
                mem_write_sites[m.0].push((si, ta, td));
            }
            match &st.io {
                Some(Io::Read(v, port)) => {
                    let data = Expr::net(
                        self.in_data[&port.0],
                        self.p.ports[port.0].width,
                    );
                    let gate = match self.opts.mode {
                        SchedulingMode::Superstate => {
                            Some(Expr::net(self.in_valid[&port.0], 1))
                        }
                        SchedulingMode::FixedCycle => None,
                    };
                    reg_actions[self.alloc.reg_of[v.0]].push((si, data, gate));
                    in_read_states.entry(port.0).or_default().push(si);
                }
                Some(Io::Write(port, e)) => {
                    let te = self.tx(e);
                    out_sites.entry(port.0).or_default().push((si, te));
                }
                None => {}
            }
            // Transition expression for this state.
            let trans = match &st.next {
                Next::Goto(t) => {
                    let target = self.state_lit(*t);
                    match (&st.io, self.opts.mode) {
                        (Some(Io::Read(_, port)), SchedulingMode::Superstate) => {
                            Expr::net(self.in_valid[&port.0], 1)
                                .mux(target, self.state_lit(si))
                        }
                        (Some(Io::Write(port, _)), SchedulingMode::Superstate) => {
                            Expr::net(self.out_ready[&port.0], 1)
                                .mux(target, self.state_lit(si))
                        }
                        _ => target,
                    }
                }
                Next::Branch { cond, then, els } => {
                    let tc = self.tx(cond);
                    tc.mux(self.state_lit(*then), self.state_lit(*els))
                }
            };
            transitions.push(trans);
        }

        // A shared unit can serve at most one site per state; duplicates
        // would make the operand mux silently pick one of them.
        check_unique_states(
            self.mul_sites.iter().map(|(s, _, _)| *s),
            "shared multiplier",
        )?;
        for (mi, sites) in self.mem_read_sites.iter().enumerate() {
            check_unique_states(
                sites.iter().map(|(s, _)| *s),
                &format!("memory `{}` read port", self.p.mems[mi].name),
            )?;
        }

        // Drive the shared multiplier.
        if let Some((wire, wmax)) = self.mul_wire {
            let a = self.sel_chain(
                &self
                    .mul_sites
                    .iter()
                    .map(|(s, a, _)| (*s, a.clone()))
                    .collect::<Vec<_>>(),
                Expr::lit(0, wmax),
            );
            let b_expr = self.sel_chain(
                &self
                    .mul_sites
                    .iter()
                    .map(|(s, _, b)| (*s, b.clone()))
                    .collect::<Vec<_>>(),
                Expr::lit(0, wmax),
            );
            let an = self.b.comb("shared_mul_a", a);
            let bn = self.b.comb("shared_mul_b", b_expr);
            self.b.drive(
                wire,
                Expr::net(an, wmax).mul(Expr::net(bn, wmax)),
            );
        }

        // Drive each memory's single read site.
        for (mi, mem) in self.p.mems.iter().enumerate() {
            let rdata = self.mem_rdata[mi];
            let sites = std::mem::take(&mut self.mem_read_sites[mi]);
            if sites.is_empty() {
                self.b.drive(rdata, Expr::lit(0, mem.width));
                continue;
            }
            let aw = sites.iter().map(|(_, a)| a.width()).max().expect("sites");
            let sites: Vec<(usize, Expr)> = sites
                .into_iter()
                .map(|(s, a)| (s, a.zext(aw)))
                .collect();
            let addr = self.sel_chain(&sites, Expr::lit(0, aw));
            let an = self.b.comb(format!("{}_raddr", mem.name), addr);
            self.b.drive(
                rdata,
                Expr::read_mem(self.mems_rtl[mi], Expr::net(an, aw), mem.width),
            );
        }

        // Memory write ports.
        for (mi, mem) in self.p.mems.iter().enumerate() {
            let sites = &mem_write_sites[mi];
            if sites.is_empty() {
                continue;
            }
            let wen = self.or_states(&sites.iter().map(|(s, _, _)| *s).collect::<Vec<_>>());
            let aw = sites.iter().map(|(_, a, _)| a.width()).max().expect("sites");
            let addr_sites: Vec<(usize, Expr)> = sites
                .iter()
                .map(|(s, a, _)| (*s, a.clone().zext(aw)))
                .collect();
            let data_sites: Vec<(usize, Expr)> = sites
                .iter()
                .map(|(s, _, d)| (*s, d.clone()))
                .collect();
            let addr = self.sel_chain(&addr_sites, Expr::lit(0, aw));
            let data = self.sel_chain(&data_sites, Expr::lit(0, mem.width));
            self.b.mem_write(self.mems_rtl[mi], addr, data, wen);
        }

        // Register next-value logic.
        for (r, actions) in reg_actions.iter().enumerate() {
            let w = self.alloc.reg_width[r];
            let hold = Expr::net(self.reg_net[r], w);
            let mut next = hold.clone();
            for (s, te, gate) in actions.iter().rev() {
                let mut sel = Expr::net(self.st_eq[*s], 1);
                if let Some(g) = gate {
                    sel = sel.and(g.clone());
                }
                next = sel.mux(te.clone(), next);
            }
            self.b.set_next(self.reg_net[r], next);
        }

        // Next-state logic.
        let mut state_next = self.state_lit(0);
        for (s, trans) in transitions.iter().enumerate().rev() {
            state_next = Expr::net(self.st_eq[s], 1).mux(trans.clone(), state_next);
        }
        self.b.set_next(self.state_net, state_next);

        // Output ports and flow-control outputs.
        for (pi, port) in self.p.ports.iter().enumerate() {
            match port.dir {
                PortDir::Out => {
                    let sites = out_sites.remove(&pi).unwrap_or_default();
                    let data = self.sel_chain(&sites, Expr::lit(0, port.width));
                    self.b.output(&port.name, data);
                    let flag =
                        self.or_states(&sites.iter().map(|(s, _)| *s).collect::<Vec<_>>());
                    match self.opts.mode {
                        SchedulingMode::Superstate => {
                            self.b.output(format!("{}_valid", port.name), flag);
                        }
                        SchedulingMode::FixedCycle => {
                            self.b.output(format!("{}_strobe", port.name), flag);
                        }
                    }
                }
                PortDir::In => {
                    let states = in_read_states.remove(&pi).unwrap_or_default();
                    let flag = self.or_states(&states);
                    match self.opts.mode {
                        SchedulingMode::Superstate => {
                            self.b.output(format!("{}_ready", port.name), flag);
                        }
                        SchedulingMode::FixedCycle => {
                            self.b.output(format!("{}_strobe", port.name), flag);
                        }
                    }
                }
            }
        }

        // Observability: the FSM state (used by tests and the cosim
        // harness; costs no cells).
        self.b
            .output("dbg_state", Expr::net(self.state_net, self.sbits));

        let module = std::mem::replace(&mut self.b, ModuleBuilder::new("_"))
            .build()
            .map_err(|e| SynthError::Unsupported(format!("emitted RTL invalid: {e}")))?;

        let report = BehReport {
            states: self.s.states.len(),
            registers: self.alloc.register_count(),
            register_bits: self.alloc.register_bits(),
            variables: self.p.var_count(),
            shared_multipliers: usize::from(self.mul_wire.is_some()),
        };
        Ok(BehSynthOutput { module, report })
    }

    fn declare_ports(&mut self) {
        for (pi, port) in self.p.ports.iter().enumerate() {
            match port.dir {
                PortDir::In => {
                    let d = self.b.input(&port.name, port.width);
                    self.in_data.insert(pi, d);
                    if self.opts.mode == SchedulingMode::Superstate {
                        let v = self.b.input(format!("{}_valid", port.name), 1);
                        self.in_valid.insert(pi, v);
                    }
                }
                PortDir::Out => {
                    if self.opts.mode == SchedulingMode::Superstate {
                        let r = self.b.input(format!("{}_ready", port.name), 1);
                        self.out_ready.insert(pi, r);
                    }
                }
            }
        }
    }

    fn declare_state_machine(&mut self) {
        self.state_net = self.b.reg("fsm_state", self.sbits, Bv::zero(self.sbits));
        for s in 0..self.s.states.len() {
            let eq = Expr::net(self.state_net, self.sbits).eq(Expr::lit(s as u64, self.sbits));
            self.st_eq.push(self.b.comb(format!("st_eq_{s}"), eq));
        }
    }

    fn declare_registers(&mut self) {
        for r in 0..self.alloc.register_count() {
            let w = self.alloc.reg_width[r];
            let name = format!("r_{}", self.alloc.reg_name[r]);
            self.reg_net.push(self.b.reg(name, w, Bv::zero(w)));
        }
    }

    fn declare_memories(&mut self) {
        for mem in &self.p.mems {
            let m = self.b.memory(mem.name.clone(), mem.width, mem.init.clone());
            self.mems_rtl.push(m);
            let w = self
                .b
                .wire(format!("{}_rdata", mem.name), mem.width);
            self.mem_rdata.push(w);
        }
    }

    fn declare_shared_multiplier(&mut self) {
        if !self.opts.share_resources {
            return;
        }
        let mut wmax = 0u32;
        for st in &self.s.states {
            let mut scan = |e: &BExpr| max_mul_width(e, &mut wmax);
            for (_, e) in &st.actions {
                scan(e);
            }
            for (_, a, d) in &st.mem_writes {
                scan(a);
                scan(d);
            }
            if let Some(Io::Write(_, e)) = &st.io {
                scan(e);
            }
            if let Next::Branch { cond, .. } = &st.next {
                scan(cond);
            }
        }
        if wmax > 0 {
            let wire = self.b.wire("shared_mul_out", wmax);
            self.mul_wire = Some((wire, wmax));
        }
    }

    fn state_lit(&self, s: usize) -> Expr {
        Expr::lit(s as u64, self.sbits)
    }

    /// `mux(st==s0, e0, mux(st==s1, e1, ... default))`.
    fn sel_chain(&self, sites: &[(usize, Expr)], default: Expr) -> Expr {
        sites.iter().rev().fold(default, |acc, (s, e)| {
            Expr::net(self.st_eq[*s], 1).mux(e.clone(), acc)
        })
    }

    /// OR of state-equality flags (constant 0 when empty).
    fn or_states(&self, states: &[usize]) -> Expr {
        match states.split_first() {
            None => Expr::lit(0, 1),
            Some((&first, rest)) => rest.iter().fold(
                Expr::net(self.st_eq[first], 1),
                |acc, &s| acc.or(Expr::net(self.st_eq[s], 1)),
            ),
        }
    }

    /// Translates a behavioural expression into RTL over registers,
    /// shared units and memory read wires, recording binding sites.
    fn tx(&mut self, e: &BExpr) -> Expr {
        use scflow_rtl::BinOp;
        match e {
            BExpr::Const(v) => Expr::Const(*v),
            BExpr::Var(v, w) => Expr::net(self.reg_net[self.alloc.reg_of[v.0]], *w),
            BExpr::Un(op, a) => Expr::Unary(*op, Box::new(self.tx(a))),
            BExpr::Bin(op @ (BinOp::Mul | BinOp::MulS), a, b) if self.opts.share_resources => {
                let _ = op;
                let (wire, wmax) = self.mul_wire.expect("multiplier wire declared");
                let w = a.width();
                let ta = self.tx(a).zext(wmax);
                let tb = self.tx(b).zext(wmax);
                self.mul_sites.push((self.cur_state, ta, tb));
                // Low `w` bits of a product are signedness-independent.
                if w == wmax {
                    Expr::net(wire, wmax)
                } else {
                    Expr::net(wire, wmax).slice(w - 1, 0)
                }
            }
            BExpr::Bin(op, a, b) => {
                Expr::Binary(*op, Box::new(self.tx(a)), Box::new(self.tx(b)))
            }
            BExpr::Mux(c, t, alt) => {
                let tc = self.tx(c);
                let tt = self.tx(t);
                let te = self.tx(alt);
                tc.mux(tt, te)
            }
            BExpr::Slice(a, hi, lo) => self.tx(a).slice(*hi, *lo),
            BExpr::Concat(a, b) => {
                let ta = self.tx(a);
                let tb = self.tx(b);
                ta.concat(tb)
            }
            BExpr::Zext(a, w) => self.tx(a).zext(*w),
            BExpr::Sext(a, w) => self.tx(a).sext(*w),
            BExpr::MemRead(m, addr, w) => {
                let ta = self.tx(addr);
                self.mem_read_sites[m.0].push((self.cur_state, ta));
                Expr::net(self.mem_rdata[m.0], *w)
            }
        }
    }
}

fn check_unique_states(
    states: impl Iterator<Item = usize>,
    what: &str,
) -> Result<(), SynthError> {
    let mut seen = std::collections::HashSet::new();
    for s in states {
        if !seen.insert(s) {
            return Err(SynthError::Unsupported(format!(
                "{what} is used twice in control step {s}; \
                 split the statement across steps"
            )));
        }
    }
    Ok(())
}

fn max_mul_width(e: &BExpr, wmax: &mut u32) {
    use scflow_rtl::BinOp;
    match e {
        BExpr::Const(_) | BExpr::Var(_, _) => {}
        BExpr::Un(_, a) | BExpr::Slice(a, _, _) | BExpr::Zext(a, _) | BExpr::Sext(a, _) => {
            max_mul_width(a, wmax)
        }
        BExpr::Bin(op, a, b) => {
            if matches!(op, BinOp::Mul | BinOp::MulS) {
                *wmax = (*wmax).max(a.width());
            }
            max_mul_width(a, wmax);
            max_mul_width(b, wmax);
        }
        BExpr::Mux(c, t, e2) => {
            max_mul_width(c, wmax);
            max_mul_width(t, wmax);
            max_mul_width(e2, wmax);
        }
        BExpr::Concat(a, b) => {
            max_mul_width(a, wmax);
            max_mul_width(b, wmax);
        }
        BExpr::MemRead(_, a, _) => max_mul_width(a, wmax),
    }
}
