//! Behavioural synthesis — the CoCentric SystemC Compiler analogue.
//!
//! A [`BehProgram`] (sequential statements over variables, memories and
//! I/O ports, executed in an implicit infinite loop like an `SC_THREAD`)
//! is compiled into an FSM + datapath RTL module:
//!
//! 1. **Scheduling**: statements are packed into control steps under
//!    resource constraints (multipliers, memory ports, operator chaining
//!    depth). Two modes, as in the paper:
//!    [`SchedulingMode::Superstate`] — the cycle count between I/O
//!    operations is not fixed, so I/O uses valid/ready handshaking (this
//!    "offers the greatest optimisation potential" but pays handshake
//!    logic); [`SchedulingMode::FixedCycle`] — I/O happens at fixed
//!    cycles, handshaking is dropped for simple strobes.
//! 2. **Register allocation**: conservatively one register per variable,
//!    or lifetime-based merging (`merge_registers`) — the register
//!    over-allocation of behavioural synthesis is the paper's explanation
//!    for the RTL flow's area win.
//! 3. **Binding & emission**: multipliers and memory read ports are
//!    shared across states behind operand muxes (`share_resources`, the
//!    paper's "all arithmetic operations moved into a single process
//!    allowing resource sharing"); an FSM state register plus
//!    per-register next-value muxes are emitted as an RTL
//!    [`scflow_rtl::Module`], ready for RTL synthesis.
//!
//! # Example
//!
//! ```
//! use scflow_synth::beh::{BehOptions, ProgramBuilder};
//!
//! // out = in0 * in0 + 1, forever.
//! let mut p = ProgramBuilder::new("sq");
//! let i = p.input("i", 8);
//! let o = p.output("o", 16);
//! let x = p.var("x", 8);
//! let y = p.var("y", 16);
//! p.read(x, i);
//! let xv = p.v(x);
//! let sq = xv.clone().sext(16).mul_signed(xv.sext(16));
//! p.assign(y, sq);
//! let inc = p.v(y).add(p.lit(1, 16));
//! p.assign(y, inc);
//! let out_expr = p.v(y);
//! p.write(o, out_expr);
//! let program = p.build();
//!
//! let out = scflow_synth::beh::synthesize_beh(&program, &BehOptions::default())?;
//! assert!(out.report.states >= 2);
//! assert!(out.module.registers().len() >= 2);
//! # Ok::<(), scflow_synth::SynthError>(())
//! ```

mod alloc;
mod emit;
mod ir;
mod sched;

pub use ir::{BExpr, BehProgram, MemId, PortId, ProgramBuilder, Stmt, VarId};
pub use sched::{Next, Schedule, ScheduledState};

use crate::SynthError;
use scflow_rtl::Module;

/// The I/O scheduling mode (the paper's central behavioural-synthesis
/// distinction).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulingMode {
    /// Cycle count between I/O operations is not fixed; I/O handshakes
    /// with valid/ready. Default, as in the paper's first behavioural
    /// model.
    #[default]
    Superstate,
    /// I/O at fixed cycles; handshake replaced by strobes (the paper's
    /// optimisation that removed "handshaking in loops").
    FixedCycle,
}

/// Knobs for [`synthesize_beh`].
#[derive(Clone, Debug)]
pub struct BehOptions {
    /// I/O scheduling mode.
    pub mode: SchedulingMode,
    /// Share multipliers and memory read ports across states (operand
    /// muxes in front of one unit). Off = one unit per textual site.
    pub share_resources: bool,
    /// Merge registers with disjoint lifetimes (left-edge style). Off =
    /// one register per variable (the conservative allocation the paper's
    /// behavioural flow suffered from).
    pub merge_registers: bool,
    /// Maximum multiplications scheduled into one control step.
    pub max_mul_per_state: usize,
    /// Maximum additive operators (add/sub/neg) per control step.
    pub max_add_per_state: usize,
    /// Maximum operator-chaining depth within a control step.
    pub max_chain_depth: usize,
    /// Allow several statements to share one control step (with value
    /// forwarding). Off = one statement per step, the conservative
    /// schedule that keeps every intermediate in a register across steps.
    pub pack_statements: bool,
}

impl Default for BehOptions {
    fn default() -> Self {
        BehOptions {
            mode: SchedulingMode::Superstate,
            share_resources: true,
            merge_registers: false,
            max_mul_per_state: 1,
            max_add_per_state: 2,
            max_chain_depth: 3,
            pack_statements: true,
        }
    }
}

/// Summary of a behavioural synthesis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BehReport {
    /// FSM states generated.
    pub states: usize,
    /// Datapath registers allocated (excluding the state register).
    pub registers: usize,
    /// Total datapath register bits.
    pub register_bits: usize,
    /// Variables before register merging.
    pub variables: usize,
    /// Shared multiplier units instantiated (0 when unshared).
    pub shared_multipliers: usize,
}

/// The output of [`synthesize_beh`].
#[derive(Clone, Debug)]
pub struct BehSynthOutput {
    /// The generated FSM + datapath, ready for RTL synthesis and for
    /// interpreted RTL simulation.
    pub module: Module,
    /// Allocation summary.
    pub report: BehReport,
}

/// Schedules a behavioural program without emitting RTL — useful for
/// inspecting the control steps ([`Schedule::describe`]).
///
/// # Errors
///
/// Same conditions as [`synthesize_beh`].
pub fn schedule_only(program: &BehProgram, opts: &BehOptions) -> Result<Schedule, SynthError> {
    sched::schedule(program, opts)
}

/// Compiles a behavioural program to RTL.
///
/// # Errors
///
/// Returns [`SynthError::Unsupported`] for programs outside the supported
/// subset (see the module documentation).
pub fn synthesize_beh(
    program: &BehProgram,
    opts: &BehOptions,
) -> Result<BehSynthOutput, SynthError> {
    let schedule = sched::schedule(program, opts)?;
    let allocation = alloc::allocate(program, &schedule, opts);
    emit::emit(program, &schedule, &allocation, opts)
}
