//! The behavioural IR: variables, ports, memories, statements,
//! expressions, and a builder.

use scflow_hwtypes::Bv;
use scflow_rtl::{BinOp, UnaryOp};

/// Index of a variable within a [`BehProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Index of an I/O port within a [`BehProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortId(pub usize);

/// Index of a memory within a [`BehProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemId(pub usize);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PortDir {
    In,
    Out,
}

#[derive(Clone, Debug)]
pub(crate) struct BehPort {
    pub name: String,
    pub width: u32,
    pub dir: PortDir,
}

#[derive(Clone, Debug)]
pub(crate) struct BehVar {
    pub name: String,
    pub width: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct BehMem {
    pub name: String,
    pub width: u32,
    pub init: Vec<Bv>,
}

/// A behavioural expression over variables, memories and constants.
///
/// Operator semantics (widths, wrapping, signedness) are identical to the
/// RTL [`scflow_rtl::Expr`]; only the leaves differ (variables instead of
/// nets).
#[derive(Clone, PartialEq, Debug)]
pub enum BExpr {
    /// A constant.
    Const(Bv),
    /// The current value of a variable. The width is recorded.
    Var(VarId, u32),
    /// Unary operation.
    Un(UnaryOp, Box<BExpr>),
    /// Binary operation (same width rules as RTL).
    Bin(BinOp, Box<BExpr>, Box<BExpr>),
    /// `cond ? then : else`.
    Mux(Box<BExpr>, Box<BExpr>, Box<BExpr>),
    /// Bit slice `[hi:lo]`.
    Slice(Box<BExpr>, u32, u32),
    /// Concatenation `{hi, lo}`.
    Concat(Box<BExpr>, Box<BExpr>),
    /// Zero extension / truncation.
    Zext(Box<BExpr>, u32),
    /// Sign extension / truncation.
    Sext(Box<BExpr>, u32),
    /// Combinational memory read.
    MemRead(MemId, Box<BExpr>, u32),
}

macro_rules! bin_method {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(self, rhs: BExpr) -> BExpr {
            BExpr::Bin($op, Box::new(self), Box::new(rhs))
        }
    };
}

#[allow(clippy::should_implement_trait)] // fluent HDL-style expression builders
impl BExpr {
    /// The result width in bits.
    pub fn width(&self) -> u32 {
        match self {
            BExpr::Const(v) => v.width(),
            BExpr::Var(_, w) => *w,
            BExpr::Un(op, a) => match op {
                UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
                _ => a.width(),
            },
            BExpr::Bin(op, a, _) => {
                if op.is_comparison() {
                    1
                } else {
                    a.width()
                }
            }
            BExpr::Mux(_, t, _) => t.width(),
            BExpr::Slice(_, hi, lo) => hi - lo + 1,
            BExpr::Concat(a, b) => a.width() + b.width(),
            BExpr::Zext(_, w) | BExpr::Sext(_, w) => *w,
            BExpr::MemRead(_, _, w) => *w,
        }
    }

    bin_method!(
        /// Wrapping addition.
        add, BinOp::Add);
    bin_method!(
        /// Wrapping subtraction.
        sub, BinOp::Sub);
    bin_method!(
        /// Unsigned multiplication.
        mul, BinOp::Mul);
    bin_method!(
        /// Signed multiplication.
        mul_signed, BinOp::MulS);
    bin_method!(
        /// Bitwise AND.
        and, BinOp::And);
    bin_method!(
        /// Bitwise OR.
        or, BinOp::Or);
    bin_method!(
        /// Bitwise XOR.
        xor, BinOp::Xor);
    bin_method!(
        /// Logical shift left.
        shl, BinOp::Shl);
    bin_method!(
        /// Logical shift right.
        shr, BinOp::Shr);
    bin_method!(
        /// Arithmetic shift right.
        sar, BinOp::Sar);
    bin_method!(
        /// Equality (1-bit result).
        eq, BinOp::Eq);
    bin_method!(
        /// Inequality (1-bit result).
        ne, BinOp::Ne);
    bin_method!(
        /// Unsigned less-than.
        ult, BinOp::Ult);
    bin_method!(
        /// Unsigned less-or-equal.
        ule, BinOp::Ule);
    bin_method!(
        /// Signed less-than.
        slt, BinOp::Slt);
    bin_method!(
        /// Signed less-or-equal.
        sle, BinOp::Sle);

    /// Bitwise NOT.
    pub fn not(self) -> BExpr {
        BExpr::Un(UnaryOp::Not, Box::new(self))
    }

    /// Two's-complement negation.
    pub fn neg(self) -> BExpr {
        BExpr::Un(UnaryOp::Neg, Box::new(self))
    }

    /// `self ? then : else` (self must be 1 bit).
    pub fn mux(self, then: BExpr, alt: BExpr) -> BExpr {
        BExpr::Mux(Box::new(self), Box::new(then), Box::new(alt))
    }

    /// Bit slice `[hi:lo]`.
    pub fn slice(self, hi: u32, lo: u32) -> BExpr {
        BExpr::Slice(Box::new(self), hi, lo)
    }

    /// Concatenation `{self, low}`.
    pub fn concat(self, low: BExpr) -> BExpr {
        BExpr::Concat(Box::new(self), Box::new(low))
    }

    /// Zero extension / truncation.
    pub fn zext(self, w: u32) -> BExpr {
        BExpr::Zext(Box::new(self), w)
    }

    /// Sign extension / truncation.
    pub fn sext(self, w: u32) -> BExpr {
        BExpr::Sext(Box::new(self), w)
    }

    /// Visits all variables read by this expression.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            BExpr::Const(_) => {}
            BExpr::Var(v, _) => f(*v),
            BExpr::Un(_, a) | BExpr::Slice(a, _, _) | BExpr::Zext(a, _) | BExpr::Sext(a, _) => {
                a.for_each_var(f)
            }
            BExpr::Bin(_, a, b) | BExpr::Concat(a, b) => {
                a.for_each_var(f);
                b.for_each_var(f);
            }
            BExpr::Mux(c, t, e) => {
                c.for_each_var(f);
                t.for_each_var(f);
                e.for_each_var(f);
            }
            BExpr::MemRead(_, a, _) => a.for_each_var(f),
        }
    }

    /// Substitutes pending same-state values for variables (operator
    /// chaining / forwarding).
    pub(crate) fn substitute(&self, lookup: &impl Fn(VarId) -> Option<BExpr>) -> BExpr {
        match self {
            BExpr::Const(_) => self.clone(),
            BExpr::Var(v, _) => lookup(*v).unwrap_or_else(|| self.clone()),
            BExpr::Un(op, a) => BExpr::Un(*op, Box::new(a.substitute(lookup))),
            BExpr::Bin(op, a, b) => BExpr::Bin(
                *op,
                Box::new(a.substitute(lookup)),
                Box::new(b.substitute(lookup)),
            ),
            BExpr::Mux(c, t, e) => BExpr::Mux(
                Box::new(c.substitute(lookup)),
                Box::new(t.substitute(lookup)),
                Box::new(e.substitute(lookup)),
            ),
            BExpr::Slice(a, hi, lo) => BExpr::Slice(Box::new(a.substitute(lookup)), *hi, *lo),
            BExpr::Concat(a, b) => BExpr::Concat(
                Box::new(a.substitute(lookup)),
                Box::new(b.substitute(lookup)),
            ),
            BExpr::Zext(a, w) => BExpr::Zext(Box::new(a.substitute(lookup)), *w),
            BExpr::Sext(a, w) => BExpr::Sext(Box::new(a.substitute(lookup)), *w),
            BExpr::MemRead(m, a, w) => {
                BExpr::MemRead(*m, Box::new(a.substitute(lookup)), *w)
            }
        }
    }

    /// Counts resource classes used by this expression:
    /// `(multipliers, adders, memory reads per memory id)`.
    pub(crate) fn resources(&self, muls: &mut usize, adds: &mut usize, mem_reads: &mut Vec<usize>) {
        match self {
            BExpr::Const(_) | BExpr::Var(_, _) => {}
            BExpr::Un(op, a) => {
                if *op == UnaryOp::Neg {
                    *adds += 1;
                }
                a.resources(muls, adds, mem_reads);
            }
            BExpr::Bin(op, a, b) => {
                match op {
                    BinOp::Mul | BinOp::MulS => *muls += 1,
                    BinOp::Add | BinOp::Sub => *adds += 1,
                    _ => {}
                }
                a.resources(muls, adds, mem_reads);
                b.resources(muls, adds, mem_reads);
            }
            BExpr::Mux(c, t, e) => {
                c.resources(muls, adds, mem_reads);
                t.resources(muls, adds, mem_reads);
                e.resources(muls, adds, mem_reads);
            }
            BExpr::Slice(a, _, _) | BExpr::Zext(a, _) | BExpr::Sext(a, _) => {
                a.resources(muls, adds, mem_reads)
            }
            BExpr::Concat(a, b) => {
                a.resources(muls, adds, mem_reads);
                b.resources(muls, adds, mem_reads);
            }
            BExpr::MemRead(m, a, _) => {
                if mem_reads.len() <= m.0 {
                    mem_reads.resize(m.0 + 1, 0);
                }
                mem_reads[m.0] += 1;
                a.resources(muls, adds, mem_reads);
            }
        }
    }

    /// Operator-tree depth (for the chaining limit).
    pub(crate) fn depth(&self) -> usize {
        match self {
            BExpr::Const(_) | BExpr::Var(_, _) => 0,
            BExpr::Un(_, a) | BExpr::Slice(a, _, _) | BExpr::Zext(a, _) | BExpr::Sext(a, _) => {
                a.depth()
            }
            BExpr::Bin(_, a, b) => 1 + a.depth().max(b.depth()),
            BExpr::Mux(c, t, e) => 1 + c.depth().max(t.depth()).max(e.depth()),
            BExpr::Concat(a, b) => a.depth().max(b.depth()),
            BExpr::MemRead(_, a, _) => 1 + a.depth(),
        }
    }
}

/// A behavioural statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `var = expr`.
    Assign(VarId, BExpr),
    /// `mem[addr] = data`.
    MemWrite(MemId, BExpr, BExpr),
    /// Blocking read from an input port into a variable.
    Read(VarId, PortId),
    /// Blocking write of an expression to an output port.
    Write(PortId, BExpr),
    /// `if cond { .. } else { .. }`.
    If(BExpr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { .. }`.
    While(BExpr, Vec<Stmt>),
}

/// A behavioural program: the synthesisable content of an `SC_THREAD`
/// whose body loops forever.
#[derive(Clone, Debug)]
pub struct BehProgram {
    pub(crate) name: String,
    pub(crate) ports: Vec<BehPort>,
    pub(crate) vars: Vec<BehVar>,
    pub(crate) mems: Vec<BehMem>,
    pub(crate) body: Vec<Stmt>,
}

impl BehProgram {
    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The declared width of a variable.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn var_width(&self, v: VarId) -> u32 {
        self.vars[v.0].width
    }
}

/// Builds a [`BehProgram`].
///
/// Statements are appended in program order with [`assign`], [`read`],
/// [`write`], and the structured [`if_else`]/[`while_loop`] helpers.
///
/// [`assign`]: ProgramBuilder::assign
/// [`read`]: ProgramBuilder::read
/// [`write`]: ProgramBuilder::write
/// [`if_else`]: ProgramBuilder::if_else
/// [`while_loop`]: ProgramBuilder::while_loop
pub struct ProgramBuilder {
    program: BehProgram,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: BehProgram {
                name: name.into(),
                ports: Vec::new(),
                vars: Vec::new(),
                mems: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Declares an input port.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> PortId {
        let id = PortId(self.program.ports.len());
        self.program.ports.push(BehPort {
            name: name.into(),
            width,
            dir: PortDir::In,
        });
        id
    }

    /// Declares an output port.
    pub fn output(&mut self, name: impl Into<String>, width: u32) -> PortId {
        let id = PortId(self.program.ports.len());
        self.program.ports.push(BehPort {
            name: name.into(),
            width,
            dir: PortDir::Out,
        });
        id
    }

    /// Declares a variable.
    pub fn var(&mut self, name: impl Into<String>, width: u32) -> VarId {
        let id = VarId(self.program.vars.len());
        self.program.vars.push(BehVar {
            name: name.into(),
            width,
        });
        id
    }

    /// Declares a memory with initial contents.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty.
    pub fn memory(&mut self, name: impl Into<String>, width: u32, init: Vec<Bv>) -> MemId {
        assert!(!init.is_empty());
        let id = MemId(self.program.mems.len());
        self.program.mems.push(BehMem {
            name: name.into(),
            width,
            init,
        });
        id
    }

    /// A variable-read expression.
    pub fn v(&self, var: VarId) -> BExpr {
        BExpr::Var(var, self.program.vars[var.0].width)
    }

    /// A constant expression.
    pub fn lit(&self, bits: u64, width: u32) -> BExpr {
        BExpr::Const(Bv::new(bits, width))
    }

    /// A memory-read expression.
    pub fn mem_read(&self, mem: MemId, addr: BExpr) -> BExpr {
        BExpr::MemRead(mem, Box::new(addr), self.program.mems[mem.0].width)
    }

    /// Appends `var = expr`.
    ///
    /// # Panics
    ///
    /// Panics if the expression width differs from the variable width.
    pub fn assign(&mut self, var: VarId, expr: BExpr) {
        assert_eq!(
            expr.width(),
            self.program.vars[var.0].width,
            "assign width mismatch on {}",
            self.program.vars[var.0].name
        );
        self.program.body.push(Stmt::Assign(var, expr));
    }

    /// Appends `mem[addr] = data`.
    pub fn mem_write(&mut self, mem: MemId, addr: BExpr, data: BExpr) {
        assert_eq!(data.width(), self.program.mems[mem.0].width);
        self.program.body.push(Stmt::MemWrite(mem, addr, data));
    }

    /// Appends a blocking port read into `var`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or the port is not an input.
    pub fn read(&mut self, var: VarId, port: PortId) {
        let p = &self.program.ports[port.0];
        assert_eq!(p.dir, PortDir::In, "read from non-input {}", p.name);
        assert_eq!(p.width, self.program.vars[var.0].width);
        self.program.body.push(Stmt::Read(var, port));
    }

    /// Appends a blocking port write.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or the port is not an output.
    pub fn write(&mut self, port: PortId, expr: BExpr) {
        let p = &self.program.ports[port.0];
        assert_eq!(p.dir, PortDir::Out, "write to non-output {}", p.name);
        assert_eq!(p.width, expr.width());
        self.program.body.push(Stmt::Write(port, expr));
    }

    /// Appends an `if`/`else`: the closures build the branches using a
    /// nested builder view.
    pub fn if_else(
        &mut self,
        cond: BExpr,
        then_build: impl FnOnce(&mut ProgramBuilder),
        else_build: impl FnOnce(&mut ProgramBuilder),
    ) {
        let then_body = self.nested(then_build);
        let else_body = self.nested(else_build);
        self.program.body.push(Stmt::If(cond, then_body, else_body));
    }

    /// Appends a `while` loop.
    pub fn while_loop(&mut self, cond: BExpr, body_build: impl FnOnce(&mut ProgramBuilder)) {
        let body = self.nested(body_build);
        self.program.body.push(Stmt::While(cond, body));
    }

    fn nested(&mut self, build: impl FnOnce(&mut ProgramBuilder)) -> Vec<Stmt> {
        let saved = std::mem::take(&mut self.program.body);
        build(self);
        std::mem::replace(&mut self.program.body, saved)
    }

    /// Finalises the program.
    pub fn build(self) -> BehProgram {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_building() {
        let mut p = ProgramBuilder::new("t");
        let x = p.var("x", 8);
        let y = p.var("y", 16);
        assert_eq!(p.v(x).width(), 8);
        assert_eq!(p.v(x).sext(16).mul_signed(p.v(y)).width(), 16);
        assert_eq!(p.v(x).eq(p.lit(0, 8)).width(), 1);
        let prog = p.build();
        assert_eq!(prog.var_count(), 2);
        assert_eq!(prog.var_width(y), 16);
    }

    #[test]
    fn nested_blocks_restore_outer_body() {
        let mut p = ProgramBuilder::new("t");
        let x = p.var("x", 4);
        p.assign(x, p.lit(1, 4));
        let cond = p.v(x).eq(p.lit(1, 4));
        let one = p.lit(2, 4);
        let two = p.lit(3, 4);
        p.if_else(
            cond,
            |b| b.assign(x, one.clone()),
            |b| b.assign(x, two.clone()),
        );
        p.assign(x, p.lit(4, 4));
        let prog = p.build();
        assert_eq!(prog.body.len(), 3);
        assert!(matches!(&prog.body[1], Stmt::If(_, t, e) if t.len() == 1 && e.len() == 1));
    }

    #[test]
    fn resource_counting() {
        let mut p = ProgramBuilder::new("t");
        let x = p.var("x", 8);
        let e = p.v(x).mul(p.v(x)).add(p.v(x).mul(p.v(x)));
        let (mut m, mut a, mut r) = (0, 0, Vec::new());
        e.resources(&mut m, &mut a, &mut r);
        assert_eq!((m, a), (2, 1));
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn substitution_forwards_values() {
        let mut p = ProgramBuilder::new("t");
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let e = p.v(x).add(p.v(y));
        let xe = p.lit(5, 8);
        let out = e.substitute(&|v| if v == x { Some(xe.clone()) } else { None });
        assert_eq!(out, p.lit(5, 8).add(p.v(y)));
    }
}
