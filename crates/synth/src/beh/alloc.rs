//! Register allocation: variable liveness over the state graph and
//! lifetime-based merging.

use super::ir::{BehProgram, VarId};
use super::sched::{Io, Next, Schedule};
use super::BehOptions;
use std::collections::HashSet;

/// The variable→register mapping produced by allocation.
#[derive(Clone, Debug)]
pub(super) struct Allocation {
    /// `reg_of[v]` is the register index holding variable `v`.
    pub reg_of: Vec<usize>,
    /// Width of each register.
    pub reg_width: Vec<u32>,
    /// Name of each register (first variable mapped to it, plus merge
    /// count when shared).
    pub reg_name: Vec<String>,
}

impl Allocation {
    /// Number of allocated registers.
    pub fn register_count(&self) -> usize {
        self.reg_width.len()
    }

    /// Total register bits.
    pub fn register_bits(&self) -> usize {
        self.reg_width.iter().map(|&w| w as usize).sum()
    }
}

pub(super) fn allocate(
    program: &BehProgram,
    schedule: &Schedule,
    opts: &BehOptions,
) -> Allocation {
    let nv = program.var_count();
    if !opts.merge_registers {
        // Conservative: one register per variable (the paper's
        // behavioural-flow over-allocation).
        return Allocation {
            reg_of: (0..nv).collect(),
            reg_width: (0..nv).map(|v| program.var_width(VarId(v))).collect(),
            reg_name: (0..nv).map(|v| program.vars[v].name.clone()).collect(),
        };
    }

    let ns = schedule.states.len();

    // use/def per state.
    let mut uses: Vec<HashSet<usize>> = vec![HashSet::new(); ns];
    let mut defs: Vec<HashSet<usize>> = vec![HashSet::new(); ns];
    for (s, st) in schedule.states.iter().enumerate() {
        let mut add_use = |v: VarId| {
            uses[s].insert(v.0);
        };
        for (_, e) in &st.actions {
            e.for_each_var(&mut add_use);
        }
        for (_, a, d) in &st.mem_writes {
            a.for_each_var(&mut add_use);
            d.for_each_var(&mut add_use);
        }
        if let Some(Io::Write(_, e)) = &st.io {
            e.for_each_var(&mut add_use);
        }
        if let Next::Branch { cond, .. } = &st.next {
            cond.for_each_var(&mut add_use);
        }
        for (v, _) in &st.actions {
            defs[s].insert(v.0);
        }
        if let Some(Io::Read(v, _)) = &st.io {
            defs[s].insert(v.0);
        }
    }

    // Backward liveness to fixpoint.
    let succs: Vec<Vec<usize>> = schedule
        .states
        .iter()
        .map(|st| match &st.next {
            Next::Goto(t) => vec![*t],
            Next::Branch { then, els, .. } => vec![*then, *els],
        })
        .collect();
    let mut live_in: Vec<HashSet<usize>> = vec![HashSet::new(); ns];
    let mut live_out: Vec<HashSet<usize>> = vec![HashSet::new(); ns];
    loop {
        let mut changed = false;
        for s in (0..ns).rev() {
            let mut out: HashSet<usize> = HashSet::new();
            for &t in &succs[s] {
                out.extend(live_in[t].iter().copied());
            }
            let mut inn: HashSet<usize> = uses[s].clone();
            for &v in &out {
                if !defs[s].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[s] || inn != live_in[s] {
                live_out[s] = out;
                live_in[s] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Interference: conservative — two variables interfere when both are
    // simultaneously live (or defined) in some state.
    let mut interferes = vec![false; nv * nv];
    for s in 0..ns {
        let alive: Vec<usize> = live_in[s]
            .iter()
            .chain(defs[s].iter())
            .chain(live_out[s].iter())
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for i in 0..alive.len() {
            for j in (i + 1)..alive.len() {
                interferes[alive[i] * nv + alive[j]] = true;
                interferes[alive[j] * nv + alive[i]] = true;
            }
        }
    }

    // Greedy colouring among equal-width variables.
    let mut reg_of = vec![usize::MAX; nv];
    let mut reg_width: Vec<u32> = Vec::new();
    let mut reg_name: Vec<String> = Vec::new();
    let mut reg_members: Vec<Vec<usize>> = Vec::new();
    for v in 0..nv {
        let w = program.var_width(VarId(v));
        let slot = (0..reg_width.len()).find(|&r| {
            reg_width[r] == w
                && reg_members[r]
                    .iter()
                    .all(|&m| !interferes[v * nv + m])
        });
        match slot {
            Some(r) => {
                reg_of[v] = r;
                reg_members[r].push(v);
                reg_name[r] = format!("{}_sh{}", reg_name[r].split("_sh").next().expect("name"), reg_members[r].len());
            }
            None => {
                reg_of[v] = reg_width.len();
                reg_width.push(w);
                reg_name.push(program.vars[v].name.clone());
                reg_members.push(vec![v]);
            }
        }
    }

    Allocation {
        reg_of,
        reg_width,
        reg_name,
    }
}
