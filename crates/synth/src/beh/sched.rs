//! Scheduling: packing behavioural statements into FSM control steps
//! under resource constraints, with operator chaining (forwarding).

use super::ir::{BExpr, BehProgram, MemId, PortId, Stmt, VarId};
use super::BehOptions;
use crate::SynthError;
use std::collections::HashMap;

/// An I/O operation bound to a control step.
#[derive(Clone, Debug)]
pub enum Io {
    /// Capture an input port into a variable (handshaked in superstate
    /// mode).
    Read(VarId, PortId),
    /// Present an expression on an output port (handshaked in superstate
    /// mode).
    Write(PortId, BExpr),
}

/// Control transfer out of a state.
#[derive(Clone, Debug)]
pub enum Next {
    /// Unconditional transition.
    Goto(usize),
    /// Two-way branch on a 1-bit expression evaluated in this state.
    Branch {
        /// Branch condition (over start-of-state register values).
        cond: BExpr,
        /// Target when the condition is true.
        then: usize,
        /// Target when the condition is false.
        els: usize,
    },
}

/// One control step: a set of parallel register transfers plus optional
/// memory write and I/O, and the transition.
#[derive(Clone, Debug)]
pub struct ScheduledState {
    /// Parallel register transfers; expressions read start-of-state
    /// values.
    pub actions: Vec<(VarId, BExpr)>,
    /// Memory writes committed at the end of this step.
    pub mem_writes: Vec<(MemId, BExpr, BExpr)>,
    /// I/O bound to this step (always the only content of its state).
    pub io: Option<Io>,
    /// Transition.
    pub next: Next,
}

/// A complete schedule: the FSM's states. State 0 is the entry/reset
/// state; the program body loops back to it.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The control steps.
    pub states: Vec<ScheduledState>,
}

impl Schedule {
    /// Number of control steps.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the schedule is empty (never for valid programs).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Renders a human-readable state table (one line per control step:
    /// register transfers, memory writes, I/O, transition), using the
    /// program's variable names.
    pub fn describe(&self, program: &BehProgram) -> String {
        use std::fmt::Write as _;
        let var = |v: VarId| program.vars[v.0].name.clone();
        let mut out = String::new();
        for (i, st) in self.states.iter().enumerate() {
            let mut parts: Vec<String> = st
                .actions
                .iter()
                .map(|(v, _)| format!("{} <= ...", var(*v)))
                .collect();
            for (m, _, _) in &st.mem_writes {
                parts.push(format!("{}[..] <= ...", program.mems[m.0].name));
            }
            match &st.io {
                Some(Io::Read(v, p)) => {
                    parts.push(format!("read {} -> {}", program.ports[p.0].name, var(*v)))
                }
                Some(Io::Write(p, _)) => {
                    parts.push(format!("write {}", program.ports[p.0].name))
                }
                None => {}
            }
            let next = match &st.next {
                Next::Goto(t) => format!("-> S{t}"),
                Next::Branch { then, els, .. } => format!("-> S{then} | S{els}"),
            };
            let _ = writeln!(
                out,
                "S{i:<3} {:<60} {next}",
                if parts.is_empty() {
                    "(idle)".to_owned()
                } else {
                    parts.join("; ")
                }
            );
        }
        out
    }
}

struct BuildState {
    actions: Vec<(VarId, BExpr)>,
    pending: HashMap<VarId, BExpr>,
    mem_writes: Vec<(MemId, BExpr, BExpr)>,
    io: Option<Io>,
    next: Option<Next>,
}

impl BuildState {
    fn new() -> Self {
        BuildState {
            actions: Vec::new(),
            pending: HashMap::new(),
            mem_writes: Vec::new(),
            io: None,
            next: None,
        }
    }

    fn is_pure_goto(&self) -> bool {
        self.actions.is_empty() && self.mem_writes.is_empty() && self.io.is_none()
    }
}

struct Scheduler<'p> {
    opts: &'p BehOptions,
    states: Vec<BuildState>,
}

pub(super) fn schedule(program: &BehProgram, opts: &BehOptions) -> Result<Schedule, SynthError> {
    let mut s = Scheduler {
        opts,
        states: Vec::new(),
    };
    let entry = s.new_state();
    let exit = s.lower_block(&program.body, entry)?;
    s.states[exit].next = Some(Next::Goto(entry));
    Ok(s.finish())
}

impl<'p> Scheduler<'p> {
    fn new_state(&mut self) -> usize {
        self.states.push(BuildState::new());
        self.states.len() - 1
    }

    /// Closes `cur` with a Goto to a fresh state and returns the fresh one.
    fn advance(&mut self, cur: usize) -> usize {
        let fresh = self.new_state();
        self.states[cur].next = Some(Next::Goto(fresh));
        fresh
    }

    /// Total resources used by a state plus prospective extra expressions.
    fn fits(&self, state: usize, extra: &[&BExpr], extra_mem_write: Option<MemId>) -> bool {
        let st = &self.states[state];
        let mut muls = 0usize;
        let mut adds = 0usize;
        let mut reads: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        let mut count = |e: &BExpr| {
            e.resources(&mut muls, &mut adds, &mut reads);
            depth = depth.max(e.depth());
        };
        for (_, e) in &st.actions {
            count(e);
        }
        for (_, a, d) in &st.mem_writes {
            count(a);
            count(d);
        }
        if let Some(Io::Write(_, e)) = &st.io {
            count(e);
        }
        for e in extra {
            count(e);
        }
        let mut writes_per_mem: HashMap<usize, usize> = HashMap::new();
        for (m, _, _) in &st.mem_writes {
            *writes_per_mem.entry(m.0).or_insert(0) += 1;
        }
        if let Some(m) = extra_mem_write {
            *writes_per_mem.entry(m.0).or_insert(0) += 1;
        }
        muls <= self.opts.max_mul_per_state
            && adds <= self.opts.max_add_per_state
            && depth <= self.opts.max_chain_depth
            && reads.iter().all(|&r| r <= 1)
            && writes_per_mem.values().all(|&w| w <= 1)
    }

    /// Expression with same-state pending assignments substituted in.
    fn forward(&self, state: usize, e: &BExpr) -> BExpr {
        let pending = &self.states[state].pending;
        e.substitute(&|v| pending.get(&v).cloned())
    }

    fn lower_block(&mut self, stmts: &[Stmt], mut cur: usize) -> Result<usize, SynthError> {
        for stmt in stmts {
            cur = self.lower_stmt(stmt, cur)?;
        }
        Ok(cur)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, mut cur: usize) -> Result<usize, SynthError> {
        match stmt {
            Stmt::Assign(v, e) => {
                // I/O states stay pure; unpacked scheduling gives every
                // statement its own step.
                if self.states[cur].io.is_some()
                    || (!self.opts.pack_statements && !self.states[cur].is_pure_goto())
                {
                    cur = self.advance(cur);
                }
                let fwd = self.forward(cur, e);
                if !self.fits(cur, &[&fwd], None) {
                    cur = self.advance(cur);
                    let fresh_fwd = self.forward(cur, e); // pending empty
                    if !self.fits(cur, &[&fresh_fwd], None) {
                        self.check_single(&fresh_fwd)?;
                    }
                    self.put_assign(cur, *v, fresh_fwd);
                } else {
                    self.put_assign(cur, *v, fwd);
                }
                Ok(cur)
            }
            Stmt::MemWrite(m, addr, data) => {
                if self.states[cur].io.is_some()
                    || (!self.opts.pack_statements && !self.states[cur].is_pure_goto())
                {
                    cur = self.advance(cur);
                }
                let (fa, fd) = (self.forward(cur, addr), self.forward(cur, data));
                if !self.fits(cur, &[&fa, &fd], Some(*m)) {
                    cur = self.advance(cur);
                }
                let (fa, fd) = (self.forward(cur, addr), self.forward(cur, data));
                self.states[cur].mem_writes.push((*m, fa, fd));
                Ok(cur)
            }
            Stmt::Read(v, p) => {
                // I/O always gets a dedicated state.
                if !self.states[cur].is_pure_goto() || self.states[cur].next.is_some() {
                    cur = self.advance(cur);
                }
                self.states[cur].io = Some(Io::Read(*v, *p));
                Ok(self.advance(cur))
            }
            Stmt::Write(p, e) => {
                if !self.states[cur].is_pure_goto() || self.states[cur].next.is_some() {
                    cur = self.advance(cur);
                }
                // cur was just created or is empty: pending is empty, so
                // the expression reads registered values, which stay
                // stable while the handshake waits.
                let e = e.clone();
                self.check_single(&e)?;
                self.states[cur].io = Some(Io::Write(*p, e));
                Ok(self.advance(cur))
            }
            Stmt::If(c, then_body, else_body) => {
                let fc = self.forward(cur, c);
                if self.states[cur].io.is_some() || !self.fits(cur, &[&fc], None) {
                    cur = self.advance(cur);
                }
                let fc = self.forward(cur, c);
                let t0 = self.new_state();
                let e0 = self.new_state();
                self.states[cur].next = Some(Next::Branch {
                    cond: fc,
                    then: t0,
                    els: e0,
                });
                let t_exit = self.lower_block(then_body, t0)?;
                let e_exit = self.lower_block(else_body, e0)?;
                let join = self.new_state();
                self.states[t_exit].next = Some(Next::Goto(join));
                self.states[e_exit].next = Some(Next::Goto(join));
                Ok(join)
            }
            Stmt::While(c, body) => {
                let cond_state = self.new_state();
                self.states[cur].next = Some(Next::Goto(cond_state));
                let b0 = self.new_state();
                let exit = self.new_state();
                self.states[cond_state].next = Some(Next::Branch {
                    cond: c.clone(),
                    then: b0,
                    els: exit,
                });
                let b_exit = self.lower_block(body, b0)?;
                self.states[b_exit].next = Some(Next::Goto(cond_state));
                Ok(exit)
            }
        }
    }

    fn put_assign(&mut self, state: usize, v: VarId, e: BExpr) {
        let st = &mut self.states[state];
        if let Some(slot) = st.actions.iter_mut().find(|(var, _)| *var == v) {
            slot.1 = e.clone();
        } else {
            st.actions.push((v, e.clone()));
        }
        st.pending.insert(v, e);
    }

    /// A statement that alone exceeds the sharing-critical limits cannot
    /// be split; reject it when sharing requires the limit.
    fn check_single(&self, e: &BExpr) -> Result<(), SynthError> {
        let mut muls = 0;
        let mut adds = 0;
        let mut reads = Vec::new();
        e.resources(&mut muls, &mut adds, &mut reads);
        if self.opts.share_resources && muls > self.opts.max_mul_per_state {
            return Err(SynthError::Unsupported(format!(
                "expression uses {muls} multipliers in one statement; \
                 the shared-multiplier limit is {}",
                self.opts.max_mul_per_state
            )));
        }
        if reads.iter().any(|&r| r > 1) {
            return Err(SynthError::Unsupported(
                "expression reads one memory twice in a single statement".into(),
            ));
        }
        Ok(())
    }

    /// Finalises: collapse pure-Goto states and fix up indices.
    fn finish(self) -> Schedule {
        let n = self.states.len();
        // replacement[i] = the state i forwards to (itself if real).
        let mut replacement: Vec<usize> = (0..n).collect();
        for (i, st) in self.states.iter().enumerate() {
            if i != 0 && st.is_pure_goto() {
                if let Some(Next::Goto(t)) = st.next {
                    replacement[i] = t;
                }
            }
        }
        // Resolve chains.
        let resolve = |replacement: &[usize], mut i: usize| -> usize {
            let mut hops = 0;
            while replacement[i] != i && hops < n {
                i = replacement[i];
                hops += 1;
            }
            i
        };
        let resolved: Vec<usize> = (0..n).map(|i| resolve(&replacement, i)).collect();

        // Keep state 0 and all non-collapsed states; renumber densely.
        let mut dense: Vec<Option<usize>> = vec![None; n];
        let mut kept = 0usize;
        for i in 0..n {
            if resolved[i] == i {
                dense[i] = Some(kept);
                kept += 1;
            }
        }
        let map = |i: usize| dense[resolved[i]].expect("resolved state kept");

        let mut out = Vec::with_capacity(kept);
        for (i, st) in self.states.into_iter().enumerate() {
            if resolved[i] != i {
                continue;
            }
            let next = match st.next.expect("every state closed") {
                Next::Goto(t) => Next::Goto(map(t)),
                Next::Branch { cond, then, els } => Next::Branch {
                    cond,
                    then: map(then),
                    els: map(els),
                },
            };
            out.push(ScheduledState {
                actions: st.actions,
                mem_writes: st.mem_writes,
                io: st.io,
                next,
            });
        }
        Schedule { states: out }
    }
}
