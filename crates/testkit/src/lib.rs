//! Hermetic test and benchmark kit for the scflow workspace.
//!
//! The flow's whole verification story — property tests over the
//! refinement models, bit-accuracy differential checks, and the Figure
//! 8/9 simulation-performance measurements — must run with **zero
//! external dependencies** so that `cargo build && cargo test` works
//! offline and recorded seeds reproduce forever. This crate replaces
//! `rand`, `proptest` and `criterion` inside the workspace:
//!
//! * [`rng`] — a deterministic xoshiro256** PRNG seeded from one `u64`.
//! * [`prop`] — a property-test runner with strategies, failure
//!   shrinking, and `SCFLOW_PROPTEST_CASES`/`SCFLOW_PROPTEST_SEED`
//!   overrides.
//! * [`diff`] — differential testing: drive two refinement models from
//!   the same stimulus, report the first divergence (time, signal,
//!   values).
//! * [`bench`] — a micro-benchmark harness (warmup, median/MAD,
//!   simulated-cycles-per-second) with JSON emission for the
//!   `BENCH_*.json` files.
//! * [`metrics`] — delta and name-stability assertions over
//!   `scflow-obs` metrics registries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod diff;
pub mod metrics;
pub mod prop;
pub mod rng;

pub use bench::{BenchResult, Harness};
pub use metrics::{assert_counter_delta, assert_names_stable, counter_delta};
pub use diff::{diff_models, first_divergence, first_divergence_timed, Divergence};
pub use prop::{bools, check, check_seeded, check_with, floats, ints, vecs, Config, Strategy, StrategyExt, TestResult};
pub use rng::Rng;
