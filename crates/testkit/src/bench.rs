//! Criterion-free micro-benchmark harness: warmup, N timed iterations,
//! median and MAD (median absolute deviation), an optional
//! simulated-cycles-per-second metric, a text table and JSON emission for
//! the `BENCH_*.json` trajectory files.
//!
//! Environment overrides: `SCFLOW_BENCH_ITERS`, `SCFLOW_BENCH_WARMUP`.

use std::fmt::Write as _;
use std::time::Instant;

/// Statistics of one benchmarked function.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration times, nanoseconds.
    pub mad_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Mean iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Simulated clock cycles per iteration (when the workload reports
    /// them).
    pub cycles: Option<u64>,
    /// Simulated cycles per wall second, from the *median* iteration —
    /// the paper's Figure 8/9 metric.
    pub cycles_per_sec: Option<f64>,
    /// Worker threads the benchmarked workload ran on (`None`, emitted
    /// as JSON `null`, for serial rows).
    pub threads: Option<u32>,
    /// Extra named metrics carried into the JSON output.
    pub metrics: Vec<(String, f64)>,
}

/// A group of benchmarks sharing warmup/iteration settings.
pub struct Harness {
    /// Group name (becomes the JSON `group` field).
    pub group: String,
    /// Untimed warmup iterations per benchmark.
    pub warmup: u32,
    /// Timed iterations per benchmark.
    pub iters: u32,
    /// Results, in registration order.
    pub results: Vec<BenchResult>,
}

fn env_u32(key: &str, default: u32) -> u32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

impl Harness {
    /// A harness with the defaults (10 timed iterations, 2 warmup),
    /// overridable via `SCFLOW_BENCH_ITERS`/`SCFLOW_BENCH_WARMUP`.
    pub fn new(group: &str) -> Self {
        Harness {
            group: group.to_owned(),
            warmup: env_u32("SCFLOW_BENCH_WARMUP", 2),
            iters: env_u32("SCFLOW_BENCH_ITERS", 10),
            results: Vec::new(),
        }
    }

    /// Overrides the timed iteration count (env still wins).
    pub fn with_iters(mut self, iters: u32) -> Self {
        self.iters = env_u32("SCFLOW_BENCH_ITERS", iters);
        self
    }

    /// Overrides the warmup iteration count (env still wins). Long-running
    /// workloads with stable per-iteration times (e.g. the serial
    /// fault-simulation reference) want fewer warmups than the default.
    pub fn with_warmup(mut self, warmup: u32) -> Self {
        self.warmup = env_u32("SCFLOW_BENCH_WARMUP", warmup);
        self
    }

    /// Times `f`, keeping its result out of the optimiser's reach.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        self.bench_cycles_inner(name, move || {
            std::hint::black_box(f());
            None
        })
    }

    /// Times `f`, which reports the simulated clock cycles it covered; the
    /// result gains a `cycles_per_sec` metric (median-based).
    pub fn bench_cycles(&mut self, name: &str, mut f: impl FnMut() -> u64) -> &BenchResult {
        self.bench_cycles_inner(name, move || Some(std::hint::black_box(f())))
    }

    fn bench_cycles_inner(
        &mut self,
        name: &str,
        mut f: impl FnMut() -> Option<u64>,
    ) -> &BenchResult {
        for _ in 0..self.warmup {
            f();
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        let mut cycles = None;
        for _ in 0..self.iters {
            let t0 = Instant::now();
            cycles = f();
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let med = median(&samples);
        let mut devs: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
        devs.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_owned(),
            iters: self.iters,
            median_ns: med,
            mad_ns: median(&devs),
            min_ns: samples[0],
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
            cycles,
            cycles_per_sec: cycles.map(|c| c as f64 / (med / 1e9).max(1e-12)),
            threads: None,
            metrics: Vec::new(),
        };
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// Attaches a named metric to the most recent result.
    pub fn metric(&mut self, key: &str, value: f64) {
        if let Some(last) = self.results.last_mut() {
            last.metrics.push((key.to_owned(), value));
        }
    }

    /// Records the worker-thread count of the most recent result
    /// (serial rows keep the default `null`).
    pub fn set_threads(&mut self, threads: u32) {
        if let Some(last) = self.results.last_mut() {
            last.threads = Some(threads);
        }
    }

    /// Renders a plain-text results table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>10} {:>6} {:>16}",
            "benchmark", "median", "+/- MAD", "iters", "sim cycles/s"
        );
        for r in &self.results {
            let cps = r
                .cycles_per_sec
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "-".to_owned());
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>10} {:>6} {:>16}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mad_ns),
                r.iters,
                cps
            );
        }
        out
    }

    /// Serialises the whole group as JSON (no external crates: the format
    /// is flat enough to write by hand).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"group\": {},\n  \"harness\": \"scflow-testkit\",\n  \"warmup\": {},\n  \"results\": [", json_str(&self.group), self.warmup);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"iters\": {}, \"median_ns\": {}, \"mad_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"cycles\": {}, \"cycles_per_sec\": {}",
                json_str(&r.name),
                r.iters,
                json_num(r.median_ns),
                json_num(r.mad_ns),
                json_num(r.min_ns),
                json_num(r.mean_ns),
                r.cycles.map_or("null".to_owned(), |c| c.to_string()),
                r.cycles_per_sec.map_or("null".to_owned(), json_num),
            );
            let _ = write!(
                out,
                ", \"threads\": {}",
                r.threads.map_or("null".to_owned(), |t| t.to_string())
            );
            for (k, v) in &r.metrics {
                let _ = write!(out, ", {}: {}", json_str(k), json_num(*v));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`Harness::to_json`] to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_stats() {
        let mut h = Harness {
            group: "t".into(),
            warmup: 1,
            iters: 5,
            results: Vec::new(),
        };
        let r = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns > 0.0);
        assert_eq!(r.iters, 5);
        assert!(r.cycles.is_none());
    }

    #[test]
    fn cycles_metric_scales_with_median() {
        let mut h = Harness {
            group: "t".into(),
            warmup: 0,
            iters: 3,
            results: Vec::new(),
        };
        let r = h.bench_cycles("fixed", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            25_000
        });
        let cps = r.cycles_per_sec.unwrap();
        // 25k cycles in >= 1ms means <= 25M cycles/s (sleep only bounds below).
        assert!(cps <= 25_000_000.0, "{cps}");
        assert!(cps > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness {
            group: "fig\"8".into(),
            warmup: 0,
            iters: 2,
            results: Vec::new(),
        };
        h.bench_cycles("m", || 10);
        h.metric("outputs", 42.0);
        h.bench_cycles("m4", || 10);
        h.set_threads(4);
        let j = h.to_json();
        assert!(j.contains("\"group\": \"fig\\\"8\""));
        assert!(j.contains("\"cycles\": 10"));
        assert!(j.contains("\"outputs\": 42"));
        assert!(j.contains("\"cycles_per_sec\": "));
        assert!(j.contains("\"threads\": null"));
        assert!(j.contains("\"threads\": 4"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
