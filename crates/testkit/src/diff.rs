//! Differential testing across refinement levels: drive two models from
//! the same stimulus and report the *first divergence* — which signal, at
//! which step, at which simulated time, with both values. This is the
//! paper's "re-validate for bit accuracy after every refinement step"
//! packaged as a reusable API.

use std::fmt::Debug;

/// The first point where two runs disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Stream index (output-sample number, cycle, …) of the difference.
    pub index: usize,
    /// Name of the diverging signal/stream.
    pub signal: String,
    /// Left model's value, `Debug`-rendered (`"<missing>"` if its stream
    /// ended early).
    pub left: String,
    /// Right model's value, same rendering.
    pub right: String,
    /// Simulated time of the diverging step, when the caller has one.
    pub time_ps: Option<u64>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence on `{}` at index {}",
            self.signal, self.index
        )?;
        if let Some(t) = self.time_ps {
            write!(f, " (t = {t} ps)")?;
        }
        write!(f, ": left {} vs right {}", self.left, self.right)
    }
}

fn render<V: Debug>(v: Option<&V>) -> String {
    match v {
        Some(v) => format!("{v:?}"),
        None => "<missing>".to_owned(),
    }
}

/// Compares two equally-meant streams element by element. A length
/// mismatch is a divergence at the first missing index.
pub fn first_divergence<V: PartialEq + Debug>(
    signal: &str,
    left: &[V],
    right: &[V],
) -> Option<Divergence> {
    first_divergence_timed(signal, left, right, &[])
}

/// [`first_divergence`] with per-index simulated times (indices beyond
/// `times` report no time).
pub fn first_divergence_timed<V: PartialEq + Debug>(
    signal: &str,
    left: &[V],
    right: &[V],
    times: &[u64],
) -> Option<Divergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let (l, r) = (left.get(i), right.get(i));
        if l != r {
            return Some(Divergence {
                index: i,
                signal: signal.to_owned(),
                left: render(l),
                right: render(r),
                time_ps: times.get(i).copied(),
            });
        }
    }
    None
}

/// Drives two models from the same stimulus and compares their output
/// streams. Returns the agreed stream length, or the first divergence.
///
/// The models are plain closures (`stimulus -> output stream`) so any two
/// refinement levels — golden C++ model, channel, behavioural, RTL, gate —
/// can be paired without the testkit knowing their types.
pub fn diff_models<S: ?Sized, V: PartialEq + Debug>(
    signal: &str,
    stimulus: &S,
    left: impl FnOnce(&S) -> Vec<V>,
    right: impl FnOnce(&S) -> Vec<V>,
) -> Result<usize, Divergence> {
    let l = left(stimulus);
    let r = right(stimulus);
    match first_divergence(signal, &l, &r) {
        None => Ok(l.len()),
        Some(d) => Err(d),
    }
}

/// Compares several named streams pairwise and reports the earliest
/// divergence across all of them (ties broken by declaration order) —
/// for lockstep traces where each signal is recorded per cycle.
pub fn first_divergence_multi<V: PartialEq + Debug>(
    streams: &[(&str, &[V], &[V])],
) -> Option<Divergence> {
    streams
        .iter()
        .filter_map(|(name, l, r)| first_divergence(name, l, r))
        .min_by_key(|d| d.index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_streams_have_no_divergence() {
        assert_eq!(first_divergence("s", &[1, 2, 3], &[1, 2, 3]), None);
    }

    #[test]
    fn value_mismatch_is_located() {
        let d = first_divergence_timed("out", &[1, 2, 3], &[1, 9, 3], &[10, 20, 30]).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left, "2");
        assert_eq!(d.right, "9");
        assert_eq!(d.time_ps, Some(20));
        let text = d.to_string();
        assert!(text.contains("`out`"));
        assert!(text.contains("t = 20 ps"));
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let d = first_divergence("s", &[1, 2, 3], &[1, 2]).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.right, "<missing>");
    }

    #[test]
    fn diff_models_runs_both_closures() {
        let ok = diff_models("y", &[1i16, 2, 3][..], |s| s.to_vec(), |s| s.to_vec());
        assert_eq!(ok, Ok(3));
        let err = diff_models(
            "y",
            &[1i16, 2, 3][..],
            |s| s.to_vec(),
            |s| s.iter().map(|v| v + 1).collect(),
        );
        assert_eq!(err.unwrap_err().index, 0);
    }

    #[test]
    fn multi_reports_earliest() {
        let a_l = [1, 2, 3];
        let a_r = [1, 2, 9];
        let b_l = [5, 5];
        let b_r = [5, 6];
        let d = first_divergence_multi(&[("a", &a_l, &a_r), ("b", &b_l, &b_r)]).unwrap();
        assert_eq!((d.signal.as_str(), d.index), ("b", 1));
    }
}
