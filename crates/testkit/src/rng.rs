//! Deterministic PRNG for tests, stimulus generation and benchmarks.
//!
//! xoshiro256** with splitmix64 seed expansion: fast, tiny, and — unlike
//! an external `rand` — guaranteed to produce the same stream on every
//! platform and toolchain, so recorded seeds reproduce forever.

/// A 64-bit deterministic generator (xoshiro256**).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// splitmix64 step — used both for seed expansion and for deriving
/// independent per-case seeds in the property runner.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seeds the full 256-bit state from one `u64` via splitmix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[lo, hi]` (inclusive). Uses Lemire-style widening
    /// reduction; the tiny modulo bias over a 64-bit space is irrelevant
    /// for test-case generation.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform signed value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128) as u128;
        if span == u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        (lo as i128 + (self.next_u64() as u128 % (span + 1)) as i128) as i64
    }

    /// Uniform `usize` in `[lo, hi)` — handy for indexing.
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.range_u64(0, len as u64 - 1)) as usize
    }

    /// A coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// `true`/`false` with equal probability.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform `i16` over the full range.
    pub fn i16(&mut self) -> i16 {
        self.next_u64() as i16
    }

    /// A vector of `n` full-range `i16` samples — the stock stimulus shape
    /// for the audio models.
    pub fn i16_vec(&mut self, n: usize) -> Vec<i16> {
        (0..n).map(|_| self.i16()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_pinned() {
        // Guards cross-version reproducibility of every recorded seed.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0x99EC_5F36_CB75_F2B4);
        let mut r = Rng::new(12345);
        let first = r.next_u64();
        let mut r2 = Rng::new(12345);
        assert_eq!(r2.next_u64(), first);
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = Rng::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range_u64(3, 10);
            assert!((3..=10).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 10;
            let s = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&s));
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn full_range_i64_does_not_panic() {
        let mut r = Rng::new(11);
        for _ in 0..10 {
            let _ = r.range_i64(i64::MIN, i64::MAX);
            let _ = r.range_u64(0, u64::MAX);
        }
    }
}
