//! A small property-testing runner: strategies generate random values,
//! failing cases are shrunk to a minimal counterexample, and every failure
//! prints the exact seed that reproduces it.
//!
//! Environment overrides:
//!
//! * `SCFLOW_PROPTEST_CASES` — number of cases per property.
//! * `SCFLOW_PROPTEST_SEED` — base seed (decimal or `0x` hex); case 0 uses
//!   exactly this seed, so a printed failure seed plus `CASES=1` replays
//!   the failing case.
//!
//! ```
//! use scflow_testkit::prop::{check, ints, vecs, StrategyExt};
//!
//! check("sum is order independent", &vecs(ints(0u32..=100), 0..=20), |v| {
//!     let mut rev = v.clone();
//!     rev.reverse();
//!     scflow_testkit::prop_assert_eq!(v.iter().sum::<u32>(), rev.iter().sum::<u32>());
//!     Ok(())
//! });
//! ```

use crate::rng::{splitmix64, Rng};
use std::cell::Cell;
use std::fmt::Debug;
use std::ops::RangeInclusive;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

/// What a property returns: `Ok(())` or a failure message.
pub type TestResult = Result<(), String>;

/// Fails the enclosing property unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return Err(format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r));
        }
    }};
}

/// A source of random values of one type, with optional shrinking.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `v`, most aggressive first. An empty
    /// list means `v` is minimal.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Integer types usable with [`ints`].
pub trait PropInt: Copy + Clone + Debug + PartialOrd {
    /// Widen to `i128` (lossless for all supported types).
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (caller guarantees range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_prop_int {
    ($($t:ty),+) => {$(
        impl PropInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )+};
}
impl_prop_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Uniform integers in an inclusive range; shrinks toward zero (clamped
/// into the range).
pub struct IntRange<T> {
    lo: T,
    hi: T,
}

/// Uniform integers in `lo..=hi`.
pub fn ints<T: PropInt>(r: RangeInclusive<T>) -> IntRange<T> {
    IntRange {
        lo: *r.start(),
        hi: *r.end(),
    }
}

impl<T: PropInt> Strategy for IntRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let (lo, hi) = (self.lo.to_i128(), self.hi.to_i128());
        let span = (hi - lo) as u128;
        let draw = if span >= u64::MAX as u128 {
            rng.next_u64() as u128
        } else {
            rng.next_u64() as u128 % (span + 1)
        };
        T::from_i128(lo + draw as i128)
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        let (lo, hi, v) = (self.lo.to_i128(), self.hi.to_i128(), v.to_i128());
        let target = 0i128.clamp(lo, hi);
        if v == target {
            return Vec::new();
        }
        let mut out = vec![T::from_i128(target)];
        // Halving deltas toward the target give logarithmic convergence.
        let mut delta = (v - target) / 2;
        while delta != 0 {
            out.push(T::from_i128(v - delta));
            delta /= 2;
        }
        let step = if v > target { v - 1 } else { v + 1 };
        if !out.iter().any(|c| c.to_i128() == step) {
            out.push(T::from_i128(step));
        }
        out
    }
}

/// Uniform floats in `[lo, hi)`; shrinks toward zero (clamped).
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform floats in `[lo, hi)`.
pub fn floats(r: RangeInclusive<f64>) -> F64Range {
    F64Range {
        lo: *r.start(),
        hi: *r.end(),
    }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let target = 0f64.clamp(self.lo, self.hi);
        if *v == target {
            return Vec::new();
        }
        let mid = (target + v) / 2.0;
        if mid == *v {
            vec![target]
        } else {
            vec![target, mid]
        }
    }
}

/// Coin flips; shrinks `true` to `false`.
pub struct Bools;

/// `true`/`false` with equal probability.
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Vectors of a fixed element strategy with a length range.
pub struct VecStrategy<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// Vectors with lengths in `len` and elements from `elem`.
pub fn vecs<S: Strategy>(elem: S, len: RangeInclusive<usize>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        min_len: *len.start(),
        max_len: *len.end(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.range_u64(self.min_len as u64, self.max_len as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter vectors first: halves, then single removals.
        if v.len() > self.min_len {
            let half = (v.len() / 2).max(self.min_len);
            out.push(v[..half].to_vec());
            out.push(v[v.len() - half..].to_vec());
            for i in 0..v.len().min(8) {
                let mut shorter = v.clone();
                shorter.remove(i);
                if shorter.len() >= self.min_len {
                    out.push(shorter);
                }
            }
        }
        // Element-wise shrink: every candidate for the first positions, so
        // greedy shrinking can binary-search an element to its boundary.
        for i in 0..v.len().min(8) {
            for e in self.elem.shrink(&v[i]) {
                let mut simpler = v.clone();
                simpler[i] = e;
                out.push(simpler);
            }
        }
        // Every candidate differs structurally from `v` (shorter, or with
        // one element replaced by a strictly different shrink candidate),
        // so the greedy loop always makes progress.
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut t = v.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Rejection-sampling wrapper created by [`StrategyExt::filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

/// Combinators on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Keeps only values satisfying `pred` (rejection sampling; panics
    /// after 10 000 consecutive rejections).
    fn filter<F: Fn(&Self::Value) -> bool>(self, label: &'static str, pred: F) -> Filter<Self, F> {
        Filter {
            inner: self,
            label,
            pred,
        }
    }
}
impl<S: Strategy> StrategyExt for S {}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("filter `{}` rejected 10000 consecutive values", self.label);
    }

    fn shrink(&self, v: &S::Value) -> Vec<S::Value> {
        let mut out = self.inner.shrink(v);
        out.retain(|c| (self.pred)(c));
        out
    }
}

/// Runner configuration; see the module docs for the env overrides.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cases per property.
    pub cases: u32,
    /// Base seed; case 0 runs with exactly this seed.
    pub seed: u64,
    /// Whether `seed` was set explicitly (skips per-property salting).
    pub seed_is_explicit: bool,
    /// Budget of shrink candidates to evaluate after a failure.
    pub max_shrink_steps: u32,
}

/// Default base seed: deterministic, so tier-1 runs are hermetic; salted
/// per property name unless overridden.
const DEFAULT_SEED: u64 = 0x5CF1_0F1C_2026_0001;

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: DEFAULT_SEED,
            seed_is_explicit: false,
            max_shrink_steps: 4_096,
        }
    }
}

impl Config {
    /// Default config with `SCFLOW_PROPTEST_CASES`/`SCFLOW_PROPTEST_SEED`
    /// applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(n) = env_u64("SCFLOW_PROPTEST_CASES") {
            cfg.cases = n.clamp(1, 1 << 20) as u32;
        }
        if let Some(s) = env_u64("SCFLOW_PROPTEST_SEED") {
            cfg.seed = s;
            cfg.seed_is_explicit = true;
        }
        cfg
    }

    /// Overrides the case count.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Pins the base seed (case 0 uses exactly this value).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.seed_is_explicit = true;
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw} is not a u64 (decimal or 0x-hex)"),
    }
}

/// A property failure, fully described (returned by [`run`]).
#[derive(Clone, Debug)]
pub struct Failure<V> {
    /// Zero-based index of the failing case.
    pub case: u32,
    /// Seed that regenerates the failing value as case 0.
    pub seed: u64,
    /// The originally generated counterexample.
    pub original: V,
    /// Failure message for the original value.
    pub original_message: String,
    /// The shrunk (minimal found) counterexample.
    pub minimal: V,
    /// Failure message for the minimal value.
    pub minimal_message: String,
    /// Number of shrink candidates that were evaluated.
    pub shrink_steps: u32,
}

impl<V: Debug> Failure<V> {
    /// The report printed (and panicked with) by [`check`].
    pub fn report(&self, name: &str) -> String {
        format!(
            "property `{name}` failed at case {case} (seed {seed:#018x})\n\
             minimal counterexample ({steps} shrink steps): {min:?}\n\
             error: {min_msg}\n\
             original counterexample: {orig:?}\n\
             error: {orig_msg}\n\
             reproduce: SCFLOW_PROPTEST_SEED={seed:#x} SCFLOW_PROPTEST_CASES=1 cargo test",
            case = self.case,
            seed = self.seed,
            steps = self.shrink_steps,
            min = self.minimal,
            min_msg = self.minimal_message,
            orig = self.original,
            orig_msg = self.original_message,
        )
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}
static HOOK_ONCE: Once = Once::new();

/// Evaluates the property once, converting panics into `Err` so that
/// shrinking can keep probing past panicking candidates without spamming
/// backtraces.
fn eval<V>(prop: &impl Fn(&V) -> TestResult, v: &V) -> TestResult {
    HOOK_ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| prop(v)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_owned());
            Err(format!("panic: {msg}"))
        }
    }
}

/// FNV-1a (the workspace-wide [`scflow_hwtypes::Fnv64`], byte-identical
/// to the loop this replaced), used to salt the default seed per
/// property name so different properties explore independent streams.
fn fnv1a(s: &str) -> u64 {
    scflow_hwtypes::Fnv64::hash_bytes(s.as_bytes())
}

/// Runs the property over `cfg.cases` generated values and returns the
/// first failure (shrunk) instead of panicking. [`check`] is the panicking
/// wrapper used by tests; this form exists so the runner itself can be
/// tested (and is what the shrinking canary asserts on).
pub fn run<S: Strategy>(
    cfg: &Config,
    name: &str,
    strategy: &S,
    prop: impl Fn(&S::Value) -> TestResult,
) -> Result<(), Failure<S::Value>> {
    let base = if cfg.seed_is_explicit {
        cfg.seed
    } else {
        cfg.seed ^ fnv1a(name)
    };
    let mut chain = base;
    for case in 0..cfg.cases {
        let case_seed = if case == 0 { base } else { splitmix64(&mut chain) };
        let mut rng = Rng::new(case_seed);
        let value = strategy.generate(&mut rng);
        let message = match eval(&prop, &value) {
            Ok(()) => continue,
            Err(m) => m,
        };

        // Greedy shrink: take the first failing candidate, repeat.
        let mut minimal = value.clone();
        let mut minimal_message = message.clone();
        let mut steps = 0u32;
        'shrinking: while steps < cfg.max_shrink_steps {
            for cand in strategy.shrink(&minimal) {
                steps += 1;
                if steps >= cfg.max_shrink_steps {
                    break 'shrinking;
                }
                if let Err(m) = eval(&prop, &cand) {
                    minimal = cand;
                    minimal_message = m;
                    continue 'shrinking;
                }
            }
            break; // every candidate passes: minimal found
        }

        return Err(Failure {
            case,
            seed: case_seed,
            original: value,
            original_message: message,
            minimal,
            minimal_message,
            shrink_steps: steps,
        });
    }
    Ok(())
}

/// Runs a property with an explicit config, panicking on failure with the
/// full shrink report.
pub fn check_with<S: Strategy>(
    cfg: &Config,
    name: &str,
    strategy: &S,
    prop: impl Fn(&S::Value) -> TestResult,
) {
    if let Err(failure) = run(cfg, name, strategy, prop) {
        panic!("{}", failure.report(name));
    }
}

/// Runs a property with [`Config::from_env`], panicking on failure.
pub fn check<S: Strategy>(name: &str, strategy: &S, prop: impl Fn(&S::Value) -> TestResult) {
    check_with(&Config::from_env(), name, strategy, prop);
}

/// Replays exactly one case from a pinned seed — the regression-pin form:
/// once a failure seed is fixed, keep it here forever.
pub fn check_seeded<S: Strategy>(
    name: &str,
    seed: u64,
    strategy: &S,
    prop: impl Fn(&S::Value) -> TestResult,
) {
    check_with(
        &Config::default().with_seed(seed).with_cases(1),
        name,
        strategy,
        prop,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("u64 roundtrips through i128", &ints(0u64..=u64::MAX), |&v| {
            crate::prop_assert_eq!((v as i128) as u64, v);
            Ok(())
        });
    }

    #[test]
    fn int_shrink_moves_toward_zero_and_terminates() {
        let s = ints(0u64..=100_000);
        let mut v = 100_000u64;
        let mut hops = 0;
        while let Some(next) = s.shrink(&v).into_iter().next() {
            assert!(next < v);
            v = next;
            hops += 1;
            assert!(hops < 100);
        }
        assert_eq!(v, 0);
    }

    #[test]
    fn filter_respects_predicate() {
        let s = ints(0u32..=1000).filter("even", |v| v % 2 == 0);
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = vecs(ints(0u8..=255), 2..=10);
        let mut rng = Rng::new(5);
        let v = s.generate(&mut rng);
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 2, "{cand:?}");
        }
    }
}
