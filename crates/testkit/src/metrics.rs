//! Assertions over [`scflow_obs`] metrics registries.
//!
//! Tests that instrument an engine typically snapshot its registry
//! before and after some work and assert on the counter deltas; this
//! module provides the delta arithmetic and the name-stability check
//! (two identical runs must register the identical metric name set —
//! the guarantee `scripts/verify.sh` leans on when it byte-compares
//! `METRICS.json` files).

use scflow_obs::MetricsRegistry;

/// The change in a counter between two registry snapshots. A missing
/// counter reads as zero, so deltas can span the metric's first
/// registration; a counter that shrank yields a negative delta.
pub fn counter_delta(before: &MetricsRegistry, after: &MetricsRegistry, name: &str) -> i128 {
    i128::from(after.counter(name).unwrap_or(0)) - i128::from(before.counter(name).unwrap_or(0))
}

/// Panics unless the counter `name` grew by exactly `expected` between
/// the two snapshots.
///
/// # Panics
///
/// Panics with both observed values on a mismatch.
#[track_caller]
pub fn assert_counter_delta(
    before: &MetricsRegistry,
    after: &MetricsRegistry,
    name: &str,
    expected: i128,
) {
    let got = counter_delta(before, after, name);
    assert_eq!(
        got, expected,
        "counter `{name}` moved by {got}, expected {expected} \
         (before={:?}, after={:?})",
        before.counter(name),
        after.counter(name)
    );
}

/// Panics unless both registries expose the identical (sorted) metric
/// name set. Values are allowed to differ — this is the stable-names
/// guarantee, not a value comparison.
///
/// # Panics
///
/// Panics listing the first name present on one side only.
#[track_caller]
pub fn assert_names_stable(a: &MetricsRegistry, b: &MetricsRegistry) {
    let an: Vec<&str> = a.names().collect();
    let bn: Vec<&str> = b.names().collect();
    if an != bn {
        let only_a: Vec<&&str> = an.iter().filter(|n| !bn.contains(n)).collect();
        let only_b: Vec<&&str> = bn.iter().filter(|n| !an.contains(n)).collect();
        panic!(
            "metric name sets differ: {} vs {} names; only in first: {only_a:?}; \
             only in second: {only_b:?}",
            an.len(),
            bn.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_spans_first_registration() {
        let before = MetricsRegistry::new();
        let mut after = MetricsRegistry::new();
        after.set_counter("a.b", 7);
        assert_eq!(counter_delta(&before, &after, "a.b"), 7);
        assert_counter_delta(&before, &after, "a.b", 7);
    }

    #[test]
    #[should_panic(expected = "name sets differ")]
    fn unstable_names_panic() {
        let mut a = MetricsRegistry::new();
        a.set_counter("x", 1);
        let b = MetricsRegistry::new();
        assert_names_stable(&a, &b);
    }
}
