//! The runner's external contract: failures shrink to minimal
//! counterexamples, printed seeds replay the failing case exactly, and the
//! env-variable overrides parse. These are the acceptance canaries for the
//! in-repo property-testing harness.

use scflow_testkit::prop::{self, ints, vecs, Config, StrategyExt};
use scflow_testkit::{prop_assert, prop_assert_eq, Rng};

/// Intentionally failing property (`v <= 1000` over 0..=1_000_000): the
/// shrinker must land on the *minimal* counterexample, 1001.
#[test]
fn canary_shrinks_int_to_minimal_counterexample() {
    let cfg = Config::default().with_seed(0xDEAD_BEEF).with_cases(200);
    let failure = prop::run(&cfg, "canary: v <= 1000", &ints(0u64..=1_000_000), |&v| {
        prop_assert!(v <= 1000, "{v} exceeds 1000");
        Ok(())
    })
    .expect_err("the canary property must fail");
    assert!(failure.original > 1000);
    assert_eq!(
        failure.minimal, 1001,
        "greedy halving shrink should find the boundary exactly \
         (got {} after {} steps)",
        failure.minimal, failure.shrink_steps
    );
    assert!(failure.shrink_steps > 0);
    assert!(failure.report("canary").contains("SCFLOW_PROPTEST_SEED="));
}

/// Vector canary: a property failing on "contains an element >= 50" must
/// shrink to a single-element vector holding exactly 50.
#[test]
fn canary_shrinks_vec_to_single_boundary_element() {
    let cfg = Config::default().with_seed(0xF00D).with_cases(200);
    let failure = prop::run(
        &cfg,
        "canary: all elements < 50",
        &vecs(ints(0u32..=1000), 0..=30),
        |v| {
            prop_assert!(v.iter().all(|&x| x < 50), "{v:?} has an element >= 50");
            Ok(())
        },
    )
    .expect_err("the vec canary must fail");
    assert_eq!(failure.minimal, vec![50], "minimal is one boundary element");
}

/// The seed printed in a failure report reproduces the same counterexample
/// when replayed as case 0 with one case — the paper-trail property the
/// whole harness rests on.
#[test]
fn failure_seed_replays_the_same_counterexample() {
    let strategy = vecs(ints(0i64..=1_000_000), 1..=40);
    let prop = |v: &Vec<i64>| -> scflow_testkit::TestResult {
        prop_assert!(v.iter().sum::<i64>() < 2_000_000, "sum too large: {v:?}");
        Ok(())
    };
    let first = prop::run(
        &Config::default().with_seed(7).with_cases(500),
        "seed replay",
        &strategy,
        prop,
    )
    .expect_err("must fail within 500 cases");

    // Replay: the reported per-case seed as base seed, one case.
    let replay = prop::run(
        &Config::default().with_seed(first.seed).with_cases(1),
        "seed replay",
        &strategy,
        prop,
    )
    .expect_err("replay must fail too");
    assert_eq!(replay.case, 0);
    assert_eq!(replay.original, first.original, "same generated value");
    assert_eq!(replay.minimal, first.minimal, "same shrink result");
}

/// Different property names explore different default streams, but an
/// explicit seed is honoured verbatim for both.
#[test]
fn explicit_seed_overrides_name_salting() {
    let capture = |name: &str, cfg: &Config| {
        prop::run(cfg, name, &ints(0u64..=u64::MAX), |&v| {
            Err(format!("capture {v}"))
        })
        .expect_err("always fails")
        .original
    };
    let cfg = Config::default().with_seed(99).with_cases(1);
    assert_eq!(capture("name a", &cfg), capture("name b", &cfg));
    let default_cfg = Config::default();
    assert_ne!(
        capture("name a", &default_cfg),
        capture("name b", &default_cfg)
    );
}

/// Panics inside properties are treated as failures and still shrink.
#[test]
fn panicking_property_is_caught_and_shrunk() {
    let cfg = Config::default().with_seed(3).with_cases(100);
    let failure = prop::run(&cfg, "panic canary", &ints(0u32..=100_000), |&v| {
        assert!(v <= 10, "panicking on {v}");
        Ok(())
    })
    .expect_err("must fail");
    assert_eq!(failure.minimal, 11);
    assert!(failure.minimal_message.contains("panic"));
}

/// Tuple strategies shrink coordinate-wise; filters keep holding during
/// shrinking.
#[test]
fn filtered_tuple_shrink_respects_filter() {
    let strategy = (ints(0u32..=10_000), ints(0u32..=10_000))
        .filter("first larger", |(a, b)| a > b);
    let cfg = Config::default().with_seed(21).with_cases(100);
    let failure = prop::run(&cfg, "filtered tuple", &strategy, |&(a, b)| {
        prop_assert!(a.saturating_sub(b) < 100, "gap too large: {a} - {b}");
        Ok(())
    })
    .expect_err("must fail");
    let (a, b) = failure.minimal;
    assert!(a > b, "filter must hold on the minimal case");
    assert!(a - b >= 100);
    assert_eq!(a - b, 100, "minimal gap is exactly the boundary");
}

/// The env knobs parse decimal and hex.
#[test]
fn env_override_parsing() {
    // Not set in the test environment: defaults apply.
    let cfg = Config::from_env();
    assert!(cfg.cases >= 1);
    // with_-style builders are the documented programmatic equivalent.
    let pinned = Config::default().with_seed(0xABC).with_cases(7);
    assert_eq!(pinned.cases, 7);
    assert_eq!(pinned.seed, 0xABC);
    assert!(pinned.seed_is_explicit);
}

/// prop_assert_eq renders both sides on failure.
#[test]
fn assert_macros_render_values() {
    let cfg = Config::default().with_seed(1).with_cases(1);
    let failure = prop::run(&cfg, "macro", &ints(0u8..=255), |&v| {
        prop_assert_eq!(v, 256u64 as u8);
        Ok(())
    });
    if let Err(f) = failure {
        assert!(f.minimal_message.contains("!="));
    }
}

/// The deterministic PRNG underpins stimulus reuse between two models:
/// two generators with the same seed feed identical stimuli.
#[test]
fn rng_streams_are_reusable_for_stimulus() {
    let a = Rng::new(0xA5).i16_vec(256);
    let b = Rng::new(0xA5).i16_vec(256);
    assert_eq!(a, b);
    assert_ne!(a, Rng::new(0xA6).i16_vec(256));
}
