//! Seeded property tests over the scflow-obs primitives: histogram
//! merging must be a commutative monoid (so per-shard histograms fold
//! together in any order), and the span profiler's self-time
//! decomposition must always telescope back to the measured total.

use scflow_obs::{Histogram, Profiler};
use scflow_testkit::prop::{check, ints, vecs};
use scflow_testkit::prop_assert_eq;

fn hist(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn histogram_merge_is_commutative() {
    let pairs = (
        vecs(ints(0u64..=u64::MAX / 2), 0..=40),
        vecs(ints(0u64..=1000), 0..=40),
    );
    check("histogram merge commutes", &pairs, |v| {
        let (xs, ys) = v;
        let mut ab = hist(xs);
        ab.merge(&hist(ys));
        let mut ba = hist(ys);
        ba.merge(&hist(xs));
        prop_assert_eq!(&ab, &ba);
        Ok(())
    });
}

#[test]
fn histogram_merge_is_associative() {
    let triples = (
        vecs(ints(0u64..=u64::MAX / 2), 0..=30),
        vecs(ints(0u64..=u64::MAX / 2), 0..=30),
        vecs(ints(0u64..=u64::MAX / 2), 0..=30),
    );
    check("histogram merge associates", &triples, |v| {
        let (xs, ys, zs) = v;
        let mut left = hist(xs);
        left.merge(&hist(ys));
        left.merge(&hist(zs));
        let mut bc = hist(ys);
        bc.merge(&hist(zs));
        let mut right = hist(xs);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        Ok(())
    });
}

#[test]
fn histogram_merge_equals_concatenated_recording() {
    let pairs = (
        vecs(ints(0u64..=u64::MAX / 2), 0..=40),
        vecs(ints(0u64..=u64::MAX / 2), 0..=40),
    );
    check("merge == record-all", &pairs, |v| {
        let (xs, ys) = v;
        let mut merged = hist(xs);
        merged.merge(&hist(ys));
        let all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(&merged, &hist(&all));
        Ok(())
    });
}

/// Builds a random span tree: each command either opens a child span or
/// closes the current one; whatever is still open at the end is closed.
fn random_tree(prof: &mut Profiler, commands: &[u8]) {
    let mut depth = 0usize;
    for &c in commands {
        if c % 3 < 2 && depth < 6 {
            prof.enter("s");
            depth += 1;
        } else if depth > 0 {
            prof.exit();
            depth -= 1;
        }
    }
    while depth > 0 {
        prof.exit();
        depth -= 1;
    }
}

#[test]
fn profiler_self_times_telescope_to_total() {
    check(
        "sum of self times == total",
        &vecs(ints(0u8..=255), 0..=60),
        |commands| {
            let mut prof = Profiler::new();
            random_tree(&mut prof, commands);
            prop_assert_eq!(prof.is_balanced(), true);
            // Children nest inside their parent on one monotonic clock,
            // so per-span self time never saturates and the self times
            // partition the measured total exactly.
            let self_sum: u64 = (0..prof.spans().len()).map(|i| prof.self_ns(i)).sum();
            prop_assert_eq!(self_sum, prof.total_ns());
            for i in 0..prof.spans().len() {
                let children = prof.children_ns(i);
                prop_assert_eq!(
                    prof.spans()[i].ns >= children,
                    true,
                    "span {} shorter than its children ({} < {})",
                    i,
                    prof.spans()[i].ns,
                    children
                );
            }
            Ok(())
        },
    );
}
