//! Property-based tests: the fixed-width types must agree with wide
//! integer arithmetic reduced modulo the width, and with each other.

use proptest::prelude::*;
use scflow_hwtypes::{bits_for, mask, sign_extend, Bv, Logic, LogicVec, SFixed, SInt, UInt};

fn widths() -> impl Strategy<Value = u32> {
    1u32..=64
}

proptest! {
    #[test]
    fn bv_add_matches_modular_arithmetic(a: u64, b: u64, w in widths()) {
        let x = Bv::new(a, w);
        let y = Bv::new(b, w);
        let expect = (x.as_u64().wrapping_add(y.as_u64())) & mask(w);
        prop_assert_eq!(x.add(y).as_u64(), expect);
    }

    #[test]
    fn bv_sub_is_add_of_negation(a: u64, b: u64, w in widths()) {
        let x = Bv::new(a, w);
        let y = Bv::new(b, w);
        prop_assert_eq!(x.sub(y), x.add(y.neg()));
    }

    #[test]
    fn bv_mul_matches_modular_arithmetic(a: u64, b: u64, w in widths()) {
        let x = Bv::new(a, w);
        let y = Bv::new(b, w);
        let expect = x.as_u64().wrapping_mul(y.as_u64()) & mask(w);
        prop_assert_eq!(x.mul(y).as_u64(), expect);
    }

    #[test]
    fn bv_signed_and_unsigned_mul_agree_on_low_bits(a: u64, b: u64, w in widths()) {
        // The property the synthesiser's shared multiplier relies on.
        let x = Bv::new(a, w);
        let y = Bv::new(b, w);
        prop_assert_eq!(x.mul(y).as_u64(), x.mul_signed(y).as_u64());
    }

    #[test]
    fn bv_signed_view_roundtrips(a: u64, w in widths()) {
        let x = Bv::new(a, w);
        prop_assert_eq!(Bv::from_i64(x.as_i64(), w), x);
        prop_assert_eq!(sign_extend(x.as_u64(), w), x.as_i64());
    }

    #[test]
    fn bv_concat_then_slice_recovers_parts(a: u64, b: u64, wa in 1u32..=32, wb in 1u32..=32) {
        let hi = Bv::new(a, wa);
        let lo = Bv::new(b, wb);
        let cat = hi.concat(lo);
        prop_assert_eq!(cat.slice(wa + wb - 1, wb), hi);
        prop_assert_eq!(cat.slice(wb - 1, 0), lo);
    }

    #[test]
    fn bv_shifts_match_u64_shifts(a: u64, w in widths(), s in 0u32..80) {
        let x = Bv::new(a, w);
        let logical = if s >= 64 { 0 } else { (x.as_u64() << s) & mask(w) };
        prop_assert_eq!(x.shl(s).as_u64(), logical);
        let right = if s >= 64 { 0 } else { x.as_u64() >> s };
        prop_assert_eq!(x.shr(s).as_u64(), right);
        let arith = x.as_i64() >> s.min(63);
        prop_assert_eq!(x.sar(s).as_i64(), (arith << (64 - w)) >> (64 - w));
    }

    #[test]
    fn bv_comparisons_match_integers(a: u64, b: u64, w in widths()) {
        let x = Bv::new(a, w);
        let y = Bv::new(b, w);
        prop_assert_eq!(x.lt(y), x.as_u64() < y.as_u64());
        prop_assert_eq!(x.lt_signed(y), x.as_i64() < y.as_i64());
    }

    #[test]
    fn bv_zext_preserves_value_sext_preserves_signed(a: u64, w in 1u32..=32, extra in 0u32..=32) {
        let x = Bv::new(a, w);
        prop_assert_eq!(x.zext(w + extra).as_u64(), x.as_u64());
        prop_assert_eq!(x.sext(w + extra).as_i64(), x.as_i64());
    }

    #[test]
    fn uint_ops_match_bv(a: u64, b: u64) {
        let (x, y) = (UInt::<24>::new(a), UInt::<24>::new(b));
        prop_assert_eq!((x + y).value(), x.to_bv().add(y.to_bv()).as_u64());
        prop_assert_eq!((x - y).value(), x.to_bv().sub(y.to_bv()).as_u64());
        prop_assert_eq!((x * y).value(), x.to_bv().mul(y.to_bv()).as_u64());
        prop_assert_eq!((!x).value(), x.to_bv().not().as_u64());
    }

    #[test]
    fn sint_wraps_like_bv(a: i64, b: i64) {
        let (x, y) = (SInt::<20>::new(a), SInt::<20>::new(b));
        prop_assert_eq!((x + y).value(), x.to_bv().add(y.to_bv()).as_i64());
        prop_assert_eq!((x * y).value(), x.to_bv().mul_signed(y.to_bv()).as_i64());
        prop_assert_eq!((-x).value(), x.to_bv().neg().as_i64());
    }

    #[test]
    fn sint_saturating_add_is_clamped_exact_sum(a: i64, b: i64) {
        let (x, y) = (SInt::<16>::new(a), SInt::<16>::new(b));
        let exact = x.value() + y.value();
        let clamped = exact.clamp(SInt::<16>::min_value().value(), SInt::<16>::max_value().value());
        prop_assert_eq!(x.saturating_add(y).value(), clamped);
    }

    #[test]
    fn logicvec_roundtrip(a: u64, w in widths()) {
        let x = Bv::new(a, w);
        let lv = LogicVec::from_bv(x);
        prop_assert!(lv.is_known());
        prop_assert_eq!(lv.to_bv(), Some(x));
    }

    #[test]
    fn logic_ops_match_bool_ops_when_known(a: bool, b: bool) {
        let (x, y) = (Logic::from_bool(a), Logic::from_bool(b));
        prop_assert_eq!(x.and(y).to_bool(), Some(a & b));
        prop_assert_eq!(x.or(y).to_bool(), Some(a | b));
        prop_assert_eq!(x.xor(y).to_bool(), Some(a ^ b));
        prop_assert_eq!(x.not().to_bool(), Some(!a));
    }

    #[test]
    fn sfixed_quantisation_error_within_half_ulp(v in -0.999f64..0.999) {
        let q = SFixed::from_f64(v, 16, 15);
        prop_assert!((q.to_f64() - v).abs() <= q.ulp() / 2.0 + 1e-12);
    }

    #[test]
    fn sfixed_full_multiply_is_exact(a in -0.999f64..0.999, b in -0.999f64..0.999) {
        let x = SFixed::from_f64(a, 16, 15);
        let y = SFixed::from_f64(b, 16, 15);
        let p = x.mul_full(&y);
        // The product of the *quantised* values is represented exactly.
        prop_assert!((p.to_f64() - x.to_f64() * y.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn bits_for_is_minimal(v: u64) {
        let w = bits_for(v);
        prop_assert!(v <= mask(w));
        if w > 1 {
            prop_assert!(v > mask(w - 1));
        }
    }
}
