//! Property-based tests: the fixed-width types must agree with wide
//! integer arithmetic reduced modulo the width, and with each other.
//! Runs on the in-repo `scflow-testkit` property runner
//! (`SCFLOW_PROPTEST_CASES`/`SCFLOW_PROPTEST_SEED` to override).

use scflow_hwtypes::{bits_for, mask, sign_extend, Bv, Logic, LogicVec, SFixed, SInt, UInt};
use scflow_testkit::prop::{bools, check, floats, ints};
use scflow_testkit::{prop_assert, prop_assert_eq};

fn widths() -> scflow_testkit::prop::IntRange<u32> {
    ints(1u32..=64)
}

fn any_u64() -> scflow_testkit::prop::IntRange<u64> {
    ints(0u64..=u64::MAX)
}

fn any_i64() -> scflow_testkit::prop::IntRange<i64> {
    ints(i64::MIN..=i64::MAX)
}

#[test]
fn bv_add_matches_modular_arithmetic() {
    check(
        "bv add mod 2^w",
        &(any_u64(), any_u64(), widths()),
        |&(a, b, w)| {
            let x = Bv::new(a, w);
            let y = Bv::new(b, w);
            let expect = (x.as_u64().wrapping_add(y.as_u64())) & mask(w);
            prop_assert_eq!(x.add(y).as_u64(), expect);
            Ok(())
        },
    );
}

#[test]
fn bv_sub_is_add_of_negation() {
    check(
        "bv sub = add neg",
        &(any_u64(), any_u64(), widths()),
        |&(a, b, w)| {
            let x = Bv::new(a, w);
            let y = Bv::new(b, w);
            prop_assert_eq!(x.sub(y), x.add(y.neg()));
            Ok(())
        },
    );
}

#[test]
fn bv_mul_matches_modular_arithmetic() {
    check(
        "bv mul mod 2^w",
        &(any_u64(), any_u64(), widths()),
        |&(a, b, w)| {
            let x = Bv::new(a, w);
            let y = Bv::new(b, w);
            let expect = x.as_u64().wrapping_mul(y.as_u64()) & mask(w);
            prop_assert_eq!(x.mul(y).as_u64(), expect);
            Ok(())
        },
    );
}

#[test]
fn bv_signed_and_unsigned_mul_agree_on_low_bits() {
    // The property the synthesiser's shared multiplier relies on.
    check(
        "mul vs mul_signed low bits",
        &(any_u64(), any_u64(), widths()),
        |&(a, b, w)| {
            let x = Bv::new(a, w);
            let y = Bv::new(b, w);
            prop_assert_eq!(x.mul(y).as_u64(), x.mul_signed(y).as_u64());
            Ok(())
        },
    );
}

#[test]
fn bv_signed_view_roundtrips() {
    check("signed view roundtrip", &(any_u64(), widths()), |&(a, w)| {
        let x = Bv::new(a, w);
        prop_assert_eq!(Bv::from_i64(x.as_i64(), w), x);
        prop_assert_eq!(sign_extend(x.as_u64(), w), x.as_i64());
        Ok(())
    });
}

#[test]
fn bv_concat_then_slice_recovers_parts() {
    check(
        "concat/slice roundtrip",
        &(any_u64(), any_u64(), ints(1u32..=32), ints(1u32..=32)),
        |&(a, b, wa, wb)| {
            let hi = Bv::new(a, wa);
            let lo = Bv::new(b, wb);
            let cat = hi.concat(lo);
            prop_assert_eq!(cat.slice(wa + wb - 1, wb), hi);
            prop_assert_eq!(cat.slice(wb - 1, 0), lo);
            Ok(())
        },
    );
}

#[test]
fn bv_shifts_match_u64_shifts() {
    check(
        "shifts vs u64",
        &(any_u64(), widths(), ints(0u32..=79)),
        |&(a, w, s)| {
            let x = Bv::new(a, w);
            let logical = if s >= 64 { 0 } else { (x.as_u64() << s) & mask(w) };
            prop_assert_eq!(x.shl(s).as_u64(), logical);
            let right = if s >= 64 { 0 } else { x.as_u64() >> s };
            prop_assert_eq!(x.shr(s).as_u64(), right);
            let arith = x.as_i64() >> s.min(63);
            prop_assert_eq!(x.sar(s).as_i64(), (arith << (64 - w)) >> (64 - w));
            Ok(())
        },
    );
}

#[test]
fn bv_comparisons_match_integers() {
    check(
        "comparisons vs integers",
        &(any_u64(), any_u64(), widths()),
        |&(a, b, w)| {
            let x = Bv::new(a, w);
            let y = Bv::new(b, w);
            prop_assert_eq!(x.lt(y), x.as_u64() < y.as_u64());
            prop_assert_eq!(x.lt_signed(y), x.as_i64() < y.as_i64());
            Ok(())
        },
    );
}

#[test]
fn bv_zext_preserves_value_sext_preserves_signed() {
    check(
        "zext/sext preserve views",
        &(any_u64(), ints(1u32..=32), ints(0u32..=32)),
        |&(a, w, extra)| {
            let x = Bv::new(a, w);
            prop_assert_eq!(x.zext(w + extra).as_u64(), x.as_u64());
            prop_assert_eq!(x.sext(w + extra).as_i64(), x.as_i64());
            Ok(())
        },
    );
}

#[test]
fn uint_ops_match_bv() {
    check("UInt ops vs Bv", &(any_u64(), any_u64()), |&(a, b)| {
        let (x, y) = (UInt::<24>::new(a), UInt::<24>::new(b));
        prop_assert_eq!((x + y).value(), x.to_bv().add(y.to_bv()).as_u64());
        prop_assert_eq!((x - y).value(), x.to_bv().sub(y.to_bv()).as_u64());
        prop_assert_eq!((x * y).value(), x.to_bv().mul(y.to_bv()).as_u64());
        prop_assert_eq!((!x).value(), x.to_bv().not().as_u64());
        Ok(())
    });
}

#[test]
fn sint_wraps_like_bv() {
    check("SInt ops vs Bv", &(any_i64(), any_i64()), |&(a, b)| {
        let (x, y) = (SInt::<20>::new(a), SInt::<20>::new(b));
        prop_assert_eq!((x + y).value(), x.to_bv().add(y.to_bv()).as_i64());
        prop_assert_eq!((x * y).value(), x.to_bv().mul_signed(y.to_bv()).as_i64());
        prop_assert_eq!((-x).value(), x.to_bv().neg().as_i64());
        Ok(())
    });
}

#[test]
fn sint_saturating_add_is_clamped_exact_sum() {
    check("saturating add clamps", &(any_i64(), any_i64()), |&(a, b)| {
        let (x, y) = (SInt::<16>::new(a), SInt::<16>::new(b));
        let exact = x.value() + y.value();
        let clamped = exact.clamp(
            SInt::<16>::min_value().value(),
            SInt::<16>::max_value().value(),
        );
        prop_assert_eq!(x.saturating_add(y).value(), clamped);
        Ok(())
    });
}

#[test]
fn logicvec_roundtrip() {
    check("LogicVec roundtrip", &(any_u64(), widths()), |&(a, w)| {
        let x = Bv::new(a, w);
        let lv = LogicVec::from_bv(x);
        prop_assert!(lv.is_known());
        prop_assert_eq!(lv.to_bv(), Some(x));
        Ok(())
    });
}

#[test]
fn logic_ops_match_bool_ops_when_known() {
    check("Logic vs bool", &(bools(), bools()), |&(a, b)| {
        let (x, y) = (Logic::from_bool(a), Logic::from_bool(b));
        prop_assert_eq!(x.and(y).to_bool(), Some(a & b));
        prop_assert_eq!(x.or(y).to_bool(), Some(a | b));
        prop_assert_eq!(x.xor(y).to_bool(), Some(a ^ b));
        prop_assert_eq!(x.not().to_bool(), Some(!a));
        Ok(())
    });
}

#[test]
fn sfixed_quantisation_error_within_half_ulp() {
    check("SFixed quantisation", &floats(-0.999..=0.999), |&v| {
        let q = SFixed::from_f64(v, 16, 15);
        prop_assert!((q.to_f64() - v).abs() <= q.ulp() / 2.0 + 1e-12);
        Ok(())
    });
}

#[test]
fn sfixed_full_multiply_is_exact() {
    check(
        "SFixed full multiply",
        &(floats(-0.999..=0.999), floats(-0.999..=0.999)),
        |&(a, b)| {
            let x = SFixed::from_f64(a, 16, 15);
            let y = SFixed::from_f64(b, 16, 15);
            let p = x.mul_full(&y);
            // The product of the *quantised* values is represented exactly.
            prop_assert!((p.to_f64() - x.to_f64() * y.to_f64()).abs() < 1e-12);
            Ok(())
        },
    );
}

#[test]
fn bits_for_is_minimal() {
    check("bits_for minimal", &any_u64(), |&v| {
        let w = bits_for(v);
        prop_assert!(v <= mask(w));
        if w > 1 {
            prop_assert!(v > mask(w - 1));
        }
        Ok(())
    });
}
