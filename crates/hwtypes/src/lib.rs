//! Hardware data types for the `scflow` design-flow reproduction.
//!
//! This crate stands in for the SystemC datatype layer (`sc_int`, `sc_uint`,
//! `sc_logic`, `sc_lv`, `sc_fixed`). It provides:
//!
//! * [`UInt`] / [`SInt`] — const-generic fixed-width integers with the
//!   wrap/mask semantics of `sc_uint<W>` / `sc_int<W>` (used by the
//!   synthesisable SRC models after the paper's *type refinement* step),
//! * [`Bv`] — a runtime-width bit-vector value used by the RTL and gate
//!   simulators where widths are data, not types,
//! * [`Logic`] and [`LogicVec`] — four-valued logic (`0/1/X/Z`) for
//!   gate-level simulation,
//! * [`SFixed`] — a small signed fixed-point type for filter-coefficient
//!   quantisation.
//!
//! # Example
//!
//! ```
//! use scflow_hwtypes::{UInt, SInt};
//!
//! let a = UInt::<8>::new(200);
//! let b = UInt::<8>::new(100);
//! // sc_uint<8> wraps modulo 2^8:
//! assert_eq!((a + b).value(), 44);
//!
//! let s = SInt::<6>::new(31);
//! assert_eq!((s + SInt::<6>::new(1)).value(), -32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bv;
mod fixed;
mod fnv;
mod logic;
mod passcfg;
mod sint;
mod uint;

pub use bv::Bv;
pub use fixed::SFixed;
pub use fnv::Fnv64;
pub use logic::{Logic, LogicVec};
pub use passcfg::PassConfig;
pub use sint::SInt;
pub use uint::UInt;

/// Maximum bit width supported by the scalar value types in this crate.
///
/// All of [`UInt`], [`SInt`] and [`Bv`] store their payload in a single
/// 64-bit word, mirroring the `sc_int`/`sc_uint` limit of 64 bits.
pub const MAX_WIDTH: u32 = 64;

/// Returns the mask selecting the low `width` bits of a `u64`.
///
/// # Panics
///
/// Panics if `width > 64`.
#[inline]
pub fn mask(width: u32) -> u64 {
    assert!(width <= MAX_WIDTH, "width {width} exceeds {MAX_WIDTH}");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the low `width` bits of `raw` into an `i64`.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 64`.
#[inline]
pub fn sign_extend(raw: u64, width: u32) -> i64 {
    assert!((1..=MAX_WIDTH).contains(&width), "bad width {width}");
    let shift = 64 - width;
    ((raw << shift) as i64) >> shift
}

/// Number of bits needed to represent `value` as an unsigned quantity.
///
/// `clog2`-style helper used by synthesis to size counters and addresses.
/// Returns 1 for `value == 0` so that every value has a representable width.
#[inline]
pub fn bits_for(value: u64) -> u32 {
    if value == 0 {
        1
    } else {
        64 - value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn mask_too_wide() {
        let _ = mask(65);
    }

    #[test]
    fn sign_extend_basics() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0, 1), 0);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
