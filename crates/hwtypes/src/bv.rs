//! Runtime-width two-valued bit vectors.
//!
//! [`Bv`] is the value type flowing through the RTL interpreter: a payload of
//! up to 64 bits plus an explicit width. All arithmetic wraps modulo
//! `2^width`, exactly like a synthesised datapath of that width.

use crate::{mask, sign_extend, MAX_WIDTH};
use std::fmt;

/// A bit-vector value with a runtime width of 1..=64 bits.
///
/// `Bv` is `Copy` and cheap; it is the unit of data exchanged between nets,
/// registers and expressions in the interpreted RTL simulator.
///
/// # Example
///
/// ```
/// use scflow_hwtypes::Bv;
///
/// let a = Bv::new(0xFF, 8);
/// let b = Bv::new(1, 8);
/// assert_eq!(a.add(b).as_u64(), 0);        // wraps at 8 bits
/// assert_eq!(a.as_i64(), -1);              // signed view
/// assert_eq!(a.zext(12).as_u64(), 0xFF);   // zero extension
/// assert_eq!(a.sext(12).as_u64(), 0xFFF);  // sign extension
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bv {
    bits: u64,
    width: u32,
}

#[allow(clippy::should_implement_trait)] // fluent IR-style value ops
impl Bv {
    /// Creates a bit vector of `width` bits holding the low `width` bits of
    /// `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > 64`.
    #[inline]
    pub fn new(bits: u64, width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "Bv width must be 1..=64, got {width}"
        );
        Bv {
            bits: bits & mask(width),
            width,
        }
    }

    /// Creates a bit vector from a signed value, truncating to `width` bits.
    #[inline]
    pub fn from_i64(value: i64, width: u32) -> Self {
        Bv::new(value as u64, width)
    }

    /// A single-bit vector holding `0` or `1`.
    #[inline]
    pub fn bit(value: bool) -> Self {
        Bv::new(u64::from(value), 1)
    }

    /// The all-zero vector of `width` bits.
    #[inline]
    pub fn zero(width: u32) -> Self {
        Bv::new(0, width)
    }

    /// The all-ones vector of `width` bits.
    #[inline]
    pub fn ones(width: u32) -> Self {
        Bv::new(u64::MAX, width)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw payload, zero-extended to 64 bits.
    #[inline]
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// The payload interpreted as a signed two's-complement number.
    #[inline]
    pub fn as_i64(&self) -> i64 {
        sign_extend(self.bits, self.width)
    }

    /// `true` if any bit is set (the Verilog truthiness of a vector).
    #[inline]
    pub fn any(&self) -> bool {
        self.bits != 0
    }

    /// Returns bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn get(&self, index: u32) -> bool {
        assert!(index < self.width, "bit {index} out of width {}", self.width);
        (self.bits >> index) & 1 == 1
    }

    /// Extracts the slice `[hi:lo]` (inclusive) as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    #[inline]
    pub fn slice(&self, hi: u32, lo: u32) -> Bv {
        assert!(hi >= lo && hi < self.width, "bad slice [{hi}:{lo}] of {}", self.width);
        Bv::new(self.bits >> lo, hi - lo + 1)
    }

    /// Zero-extends (or truncates) to `width` bits.
    #[inline]
    pub fn zext(&self, width: u32) -> Bv {
        Bv::new(self.bits, width)
    }

    /// Sign-extends (or truncates) to `width` bits.
    #[inline]
    pub fn sext(&self, width: u32) -> Bv {
        Bv::from_i64(self.as_i64(), width)
    }

    /// Concatenates `self` above `low`: result is `{self, low}`.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    #[inline]
    pub fn concat(&self, low: Bv) -> Bv {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds 64");
        Bv::new((self.bits << low.width) | low.bits, w)
    }

    /// Wrapping addition at the width of `self`.
    #[inline]
    pub fn add(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits.wrapping_add(rhs.bits), self.width)
    }

    /// Wrapping subtraction at the width of `self`.
    #[inline]
    pub fn sub(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits.wrapping_sub(rhs.bits), self.width)
    }

    /// Wrapping multiplication at the width of `self`.
    #[inline]
    pub fn mul(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits.wrapping_mul(rhs.bits), self.width)
    }

    /// Signed wrapping multiplication at the width of `self`.
    #[inline]
    pub fn mul_signed(&self, rhs: Bv) -> Bv {
        Bv::from_i64(self.as_i64().wrapping_mul(rhs.as_i64()), self.width)
    }

    /// Two's-complement negation at the width of `self`.
    #[inline]
    pub fn neg(&self) -> Bv {
        Bv::new(self.bits.wrapping_neg(), self.width)
    }

    /// Bitwise NOT.
    #[inline]
    pub fn not(&self) -> Bv {
        Bv::new(!self.bits, self.width)
    }

    /// Bitwise AND.
    #[inline]
    pub fn and(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits & rhs.bits, self.width)
    }

    /// Bitwise OR.
    #[inline]
    pub fn or(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits | rhs.bits, self.width)
    }

    /// Bitwise XOR.
    #[inline]
    pub fn xor(&self, rhs: Bv) -> Bv {
        Bv::new(self.bits ^ rhs.bits, self.width)
    }

    /// Logical shift left by `amount` (zeros shifted in, result truncated).
    #[inline]
    pub fn shl(&self, amount: u32) -> Bv {
        if amount >= 64 {
            Bv::zero(self.width)
        } else {
            Bv::new(self.bits << amount, self.width)
        }
    }

    /// Logical shift right by `amount`.
    #[inline]
    pub fn shr(&self, amount: u32) -> Bv {
        if amount >= 64 {
            Bv::zero(self.width)
        } else {
            Bv::new(self.bits >> amount, self.width)
        }
    }

    /// Arithmetic (sign-preserving) shift right by `amount`.
    #[inline]
    pub fn sar(&self, amount: u32) -> Bv {
        let v = self.as_i64() >> amount.min(63);
        Bv::from_i64(v, self.width)
    }

    /// Unsigned comparison `self < rhs`.
    #[inline]
    pub fn lt(&self, rhs: Bv) -> bool {
        self.bits < rhs.bits
    }

    /// Signed comparison `self < rhs`.
    #[inline]
    pub fn lt_signed(&self, rhs: Bv) -> bool {
        self.as_i64() < rhs.as_i64()
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks() {
        assert_eq!(Bv::new(0x1FF, 8).as_u64(), 0xFF);
        assert_eq!(Bv::new(u64::MAX, 64).as_u64(), u64::MAX);
        assert_eq!(Bv::from_i64(-1, 4).as_u64(), 0xF);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    fn signed_view() {
        assert_eq!(Bv::new(0b1000, 4).as_i64(), -8);
        assert_eq!(Bv::new(0b0111, 4).as_i64(), 7);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Bv::new(0xFF, 8);
        assert_eq!(a.add(Bv::new(2, 8)).as_u64(), 1);
        assert_eq!(Bv::new(0, 8).sub(Bv::new(1, 8)).as_u64(), 0xFF);
        assert_eq!(Bv::new(16, 8).mul(Bv::new(16, 8)).as_u64(), 0);
        assert_eq!(Bv::new(1, 8).neg().as_u64(), 0xFF);
    }

    #[test]
    fn signed_multiply() {
        let a = Bv::from_i64(-3, 8);
        let b = Bv::from_i64(5, 8);
        assert_eq!(a.mul_signed(b).as_i64(), -15);
    }

    #[test]
    fn slicing_and_concat() {
        let v = Bv::new(0b1010_1100, 8);
        assert_eq!(v.slice(7, 4).as_u64(), 0b1010);
        assert_eq!(v.slice(3, 0).as_u64(), 0b1100);
        assert_eq!(v.slice(7, 4).concat(v.slice(3, 0)), v);
        assert!(v.get(2));
        assert!(!v.get(0));
    }

    #[test]
    fn extensions() {
        let v = Bv::new(0b1000, 4);
        assert_eq!(v.zext(8).as_u64(), 0b1000);
        assert_eq!(v.sext(8).as_u64(), 0b1111_1000);
        // truncation
        assert_eq!(Bv::new(0x1FF, 16).zext(8).as_u64(), 0xFF);
    }

    #[test]
    fn shifts() {
        let v = Bv::new(0b0110, 4);
        assert_eq!(v.shl(1).as_u64(), 0b1100);
        assert_eq!(v.shl(2).as_u64(), 0b1000);
        assert_eq!(v.shr(1).as_u64(), 0b0011);
        assert_eq!(Bv::new(0b1000, 4).sar(1).as_u64(), 0b1100);
        assert_eq!(v.shl(70).as_u64(), 0);
        assert_eq!(v.shr(70).as_u64(), 0);
    }

    #[test]
    fn comparisons() {
        let minus_one = Bv::from_i64(-1, 4);
        let one = Bv::new(1, 4);
        assert!(one.lt(minus_one)); // unsigned: 1 < 15
        assert!(minus_one.lt_signed(one)); // signed: -1 < 1
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bv::new(0xAB, 8)), "8'hab");
        assert_eq!(format!("{:?}", Bv::bit(true)), "1'h1");
    }
}
