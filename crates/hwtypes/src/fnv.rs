//! A tiny FNV-1a hasher for stable content addressing.
//!
//! The design-flow crates content-address immutable artefacts — RTL
//! modules, gate netlists, compiled programs — so that a cache can share
//! one compiled program across many concurrent sessions. The standard
//! library's `DefaultHasher` is randomly seeded per process, which makes
//! it useless as a *stable* address; [`Fnv64`] is the classic 64-bit
//! FNV-1a fold, deterministic across processes and platforms, and fast
//! enough to hash a netlist in microseconds.
//!
//! This is a content *address*, not a cryptographic digest: collisions
//! are astronomically unlikely for the handful of designs a server
//! holds, but nothing defends against adversarial inputs.

/// 64-bit FNV-1a streaming hasher.
///
/// ```
/// use scflow_hwtypes::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"half_adder");
/// h.write_u64(42);
/// let a = h.finish();
/// // Deterministic: the same feed always gives the same hash.
/// let mut h2 = Fnv64::new();
/// h2.write(b"half_adder");
/// h2.write_u64(42);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds a byte slice into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u32` (little-endian) into the state.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` into the state (widened to `u64` so 32- and
    /// 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a string into the state, length-prefixed so that adjacent
    /// strings cannot alias (`"ab","c"` vs `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience over a byte slice.
    #[must_use]
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference FNV-1a values.
        assert_eq!(Fnv64::hash_bytes(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv64::hash_bytes(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv64::hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
