//! Const-generic signed integers with `sc_int<W>` semantics.

use crate::{mask, sign_extend, Bv, UInt, MAX_WIDTH};
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Neg, Not, Shl, Shr, Sub};

/// A signed two's-complement integer with exactly `W` bits (`1 <= W <= 64`).
///
/// Mirrors `sc_int<W>`: values are stored sign-extended and all arithmetic
/// wraps at `W` bits, so `SInt::<6>::new(31) + 1 == -32`. This is the type
/// the SRC behavioural model uses for samples and accumulators after the
/// paper's *type refinement* step.
///
/// # Example
///
/// ```
/// use scflow_hwtypes::SInt;
///
/// let acc = SInt::<20>::new(-1000) + SInt::<20>::new(250);
/// assert_eq!(acc.value(), -750);
/// assert_eq!((acc >> 2).value(), -188); // arithmetic shift, floor
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SInt<const W: u32>(i64);

impl<const W: u32> SInt<W> {
    /// The number of bits, as a value.
    pub const WIDTH: u32 = W;

    /// Creates a value, wrapping into the `W`-bit two's-complement range.
    ///
    /// # Panics
    ///
    /// Panics if `W` is 0 or greater than 64.
    #[inline]
    pub fn new(value: i64) -> Self {
        assert!(W >= 1 && W <= MAX_WIDTH, "SInt width must be 1..=64");
        SInt(sign_extend(value as u64, W))
    }

    /// The largest representable value, `2^(W-1) - 1`.
    #[inline]
    pub fn max_value() -> Self {
        SInt((mask(W) >> 1) as i64)
    }

    /// The smallest representable value, `-2^(W-1)`.
    #[inline]
    pub fn min_value() -> Self {
        SInt::new(i64::MIN >> (64 - W))
    }

    /// The contained value.
    #[inline]
    pub fn value(self) -> i64 {
        self.0
    }

    /// The raw bit pattern, masked to `W` bits.
    #[inline]
    pub fn raw_bits(self) -> u64 {
        (self.0 as u64) & mask(W)
    }

    /// Returns bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= W`.
    #[inline]
    pub fn bit(self, index: u32) -> bool {
        assert!(index < W, "bit {index} out of width {W}");
        (self.0 >> index) & 1 == 1
    }

    /// Resizes to a different width, truncating or sign-extending.
    #[inline]
    pub fn resize<const W2: u32>(self) -> SInt<W2> {
        SInt::<W2>::new(self.0)
    }

    /// Reinterprets the bit pattern as unsigned.
    #[inline]
    pub fn to_uint(self) -> UInt<W> {
        UInt::new(self.raw_bits())
    }

    /// Converts to a runtime-width bit vector.
    #[inline]
    pub fn to_bv(self) -> Bv {
        Bv::from_i64(self.0, W)
    }

    /// Saturating addition: clamps to the `W`-bit range instead of wrapping.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        let sum = self.0.saturating_add(rhs.0);
        if sum > Self::max_value().0 {
            Self::max_value()
        } else if sum < Self::min_value().0 {
            Self::min_value()
        } else {
            SInt(sum)
        }
    }

    /// The absolute value, wrapping on `min_value()` like hardware would.
    #[inline]
    pub fn wrapping_abs(self) -> Self {
        SInt::new(self.0.wrapping_abs())
    }
}

impl<const W: u32> From<SInt<W>> for i64 {
    fn from(v: SInt<W>) -> i64 {
        v.0
    }
}

impl<const W: u32> Add for SInt<W> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        SInt::new(self.0.wrapping_add(rhs.0))
    }
}

impl<const W: u32> Sub for SInt<W> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        SInt::new(self.0.wrapping_sub(rhs.0))
    }
}

impl<const W: u32> Mul for SInt<W> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        SInt::new(self.0.wrapping_mul(rhs.0))
    }
}

impl<const W: u32> Neg for SInt<W> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        SInt::new(self.0.wrapping_neg())
    }
}

impl<const W: u32> BitAnd for SInt<W> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        SInt(self.0 & rhs.0)
    }
}

impl<const W: u32> BitOr for SInt<W> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        SInt(self.0 | rhs.0)
    }
}

impl<const W: u32> BitXor for SInt<W> {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        SInt(self.0 ^ rhs.0)
    }
}

impl<const W: u32> Not for SInt<W> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        SInt::new(!self.0)
    }
}

impl<const W: u32> Shl<u32> for SInt<W> {
    type Output = Self;
    #[inline]
    fn shl(self, amount: u32) -> Self {
        if amount >= 64 {
            SInt(0)
        } else {
            SInt::new(self.0.wrapping_shl(amount))
        }
    }
}

/// Arithmetic (sign-preserving) right shift, matching `sc_int`.
impl<const W: u32> Shr<u32> for SInt<W> {
    type Output = Self;
    #[inline]
    fn shr(self, amount: u32) -> Self {
        SInt(self.0 >> amount.min(63))
    }
}

impl<const W: u32> fmt::Debug for SInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{W}'sd{}", self.0)
    }
}

impl<const W: u32> fmt::Display for SInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_wraps_into_range() {
        assert_eq!(SInt::<4>::new(7).value(), 7);
        assert_eq!(SInt::<4>::new(8).value(), -8);
        assert_eq!(SInt::<4>::new(-9).value(), 7);
        assert_eq!(SInt::<64>::new(i64::MIN).value(), i64::MIN);
    }

    #[test]
    fn limits() {
        assert_eq!(SInt::<8>::max_value().value(), 127);
        assert_eq!(SInt::<8>::min_value().value(), -128);
        assert_eq!(SInt::<1>::max_value().value(), 0);
        assert_eq!(SInt::<1>::min_value().value(), -1);
    }

    #[test]
    fn wrapping_arithmetic() {
        let max = SInt::<6>::max_value();
        assert_eq!((max + SInt::new(1)).value(), -32);
        assert_eq!((SInt::<6>::min_value() - SInt::new(1)).value(), 31);
        assert_eq!((SInt::<8>::new(-50) * SInt::new(3)).value(), -150 + 256);
        assert_eq!((-SInt::<8>::min_value()).value(), -128); // hardware negation wrap
    }

    #[test]
    fn saturating_add_clamps() {
        let max = SInt::<8>::max_value();
        assert_eq!(max.saturating_add(SInt::new(1)), max);
        let min = SInt::<8>::min_value();
        assert_eq!(min.saturating_add(SInt::new(-1)), min);
        assert_eq!(SInt::<8>::new(5).saturating_add(SInt::new(6)).value(), 11);
    }

    #[test]
    fn shifts() {
        assert_eq!((SInt::<8>::new(-4) >> 1).value(), -2);
        assert_eq!((SInt::<8>::new(-1) >> 5).value(), -1);
        assert_eq!((SInt::<8>::new(3) << 6).value(), -64); // 192 wraps to -64
    }

    #[test]
    fn raw_bits_and_uint_view() {
        let v = SInt::<4>::new(-1);
        assert_eq!(v.raw_bits(), 0xF);
        assert_eq!(v.to_uint().value(), 0xF);
        assert_eq!(v.to_bv().as_i64(), -1);
    }

    #[test]
    fn resize_sign_extends() {
        let v = SInt::<4>::new(-3);
        let w: SInt<12> = v.resize();
        assert_eq!(w.value(), -3);
        let narrow: SInt<3> = SInt::<8>::new(5).resize();
        assert_eq!(narrow.value(), -3); // 0b101 reinterpreted at 3 bits
    }

    #[test]
    fn abs() {
        assert_eq!(SInt::<8>::new(-5).wrapping_abs().value(), 5);
        assert_eq!(SInt::<8>::min_value().wrapping_abs().value(), -128);
    }
}
