//! Compile-pass configuration shared by both compiled simulation paths.
//!
//! The gate-level netlist optimizer (`scflow-gate`) and the RTL bytecode
//! optimizer (`scflow-rtl`) run the same conceptual pipeline — constant
//! sweep, common-subexpression elimination, dead-cone elimination, and a
//! cache-aware re-layout of the value storage. [`PassConfig`] names that
//! pipeline once, at the bottom of the crate stack, so every layer that
//! must agree on "which program is this" — the simulation service's
//! compile cache, snapshot design identities, content hashes — can fold
//! the *same* configuration word into its key. Optimized and unoptimized
//! artifacts must never alias.

use crate::Fnv64;

/// Which passes the compile pipelines run between construction and
/// execution. The default (`PassConfig::off()`) runs nothing and is
/// byte-for-byte the historical behaviour of both compilers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassConfig {
    /// Propagate and sweep constants (tied nets, folded subexpressions).
    pub const_sweep: bool,
    /// Share identical gate cones / bytecode subexpressions.
    pub cse: bool,
    /// Remove cones that cannot reach an observed output, a memory port
    /// or the scan chain.
    pub dce: bool,
    /// Re-layout value storage for cache locality (level-packed net
    /// numbering at gate level, compacted temp slots at RTL level).
    pub relayout: bool,
}

impl PassConfig {
    /// No passes: the identity pipeline (the default).
    #[must_use]
    pub fn off() -> Self {
        PassConfig::default()
    }

    /// The pipeline for an `SCFLOW_OPT` level: `0` runs nothing, `1`
    /// runs constant sweep + CSE + DCE, `2` adds the storage re-layout.
    /// Levels above 2 behave as 2.
    #[must_use]
    pub fn for_level(level: u8) -> Self {
        PassConfig {
            const_sweep: level >= 1,
            cse: level >= 1,
            dce: level >= 1,
            relayout: level >= 2,
        }
    }

    /// Reads `SCFLOW_OPT` (an integer level; unset, empty or unparsable
    /// values mean level 0).
    #[must_use]
    pub fn from_env() -> Self {
        let level = std::env::var("SCFLOW_OPT")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .unwrap_or(0);
        PassConfig::for_level(level)
    }

    /// `true` if any pass runs.
    #[must_use]
    pub fn any(&self) -> bool {
        self.const_sweep || self.cse || self.dce || self.relayout
    }

    /// A stable 64-bit tag of this configuration, folded into content
    /// hashes, cache keys and snapshot design identities so artifacts
    /// compiled under different pass configurations never alias. The
    /// all-off configuration tags to a fixed non-zero word (not 0, so a
    /// key that *forgot* to fold the tag is distinguishable).
    #[must_use]
    pub fn stable_tag(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("pass-config-v1");
        h.write_u8(u8::from(self.const_sweep));
        h.write_u8(u8::from(self.cse));
        h.write_u8(u8::from(self.dce));
        h.write_u8(u8::from(self.relayout));
        h.finish()
    }
}

impl std::fmt::Display for PassConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return f.write_str("off");
        }
        let mut first = true;
        for (on, name) in [
            (self.const_sweep, "const"),
            (self.cse, "cse"),
            (self.dce, "dce"),
            (self.relayout, "relayout"),
        ] {
            if on {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels() {
        assert!(!PassConfig::for_level(0).any());
        let l1 = PassConfig::for_level(1);
        assert!(l1.const_sweep && l1.cse && l1.dce && !l1.relayout);
        let l2 = PassConfig::for_level(2);
        assert!(l2.relayout);
        assert_eq!(PassConfig::for_level(7), PassConfig::for_level(2));
    }

    #[test]
    fn tags_distinct() {
        let tags = [0u8, 1, 2].map(|l| PassConfig::for_level(l).stable_tag());
        assert_ne!(tags[0], tags[1]);
        assert_ne!(tags[1], tags[2]);
        assert_ne!(tags[0], 0);
    }

    #[test]
    fn display() {
        assert_eq!(PassConfig::off().to_string(), "off");
        assert_eq!(PassConfig::for_level(2).to_string(), "const+cse+dce+relayout");
    }
}
