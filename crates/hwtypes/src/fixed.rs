//! Signed fixed-point values for coefficient quantisation.

use crate::sign_extend;
use std::fmt;

/// A signed fixed-point number with a runtime binary point.
///
/// `SFixed` stores a raw integer mantissa together with its total width and
/// the number of fractional bits — the shape in which the SRC's polyphase
/// filter coefficients are held in ROM after quantisation from their `f64`
/// design values.
///
/// # Example
///
/// ```
/// use scflow_hwtypes::SFixed;
///
/// // Quantise 0.5 to a Q1.15 coefficient:
/// let c = SFixed::from_f64(0.5, 16, 15);
/// assert_eq!(c.raw(), 1 << 14);
/// assert!((c.to_f64() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SFixed {
    raw: i64,
    width: u32,
    frac_bits: u32,
}

impl SFixed {
    /// Creates a fixed-point value from a raw mantissa.
    ///
    /// The mantissa is wrapped into the `width`-bit two's-complement range.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if `frac_bits >= width`
    /// plus sign bit cannot be represented (i.e. `frac_bits > width - 1`).
    pub fn from_raw(raw: i64, width: u32, frac_bits: u32) -> Self {
        assert!((1..=64).contains(&width), "SFixed width must be 1..=64");
        assert!(frac_bits < width, "frac_bits must leave room for the sign bit");
        SFixed {
            raw: sign_extend(raw as u64, width),
            width,
            frac_bits,
        }
    }

    /// Quantises a real value to the nearest representable fixed-point
    /// value, saturating at the format limits.
    ///
    /// # Panics
    ///
    /// Panics on invalid `width`/`frac_bits` (see [`SFixed::from_raw`]) or a
    /// non-finite `value`.
    pub fn from_f64(value: f64, width: u32, frac_bits: u32) -> Self {
        assert!(value.is_finite(), "cannot quantise a non-finite value");
        assert!((1..=64).contains(&width) && frac_bits < width);
        let scale = (1u64 << frac_bits) as f64;
        let max = ((1i64 << (width - 1)) - 1) as f64;
        let min = -((1i64 << (width - 1)) as f64);
        let scaled = (value * scale).round().clamp(min, max);
        SFixed {
            raw: scaled as i64,
            width,
            frac_bits,
        }
    }

    /// The raw integer mantissa.
    #[inline]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// Total width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of fractional bits.
    #[inline]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The represented real value.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / (1u64 << self.frac_bits) as f64
    }

    /// The quantisation step of this format, `2^-frac_bits`.
    #[inline]
    pub fn ulp(&self) -> f64 {
        1.0 / (1u64 << self.frac_bits) as f64
    }

    /// Multiplies two fixed-point values exactly, producing a full-precision
    /// result of `width_a + width_b` bits and summed fractional bits.
    ///
    /// This is the semantics of a hardware multiplier feeding an
    /// accumulator, as used in the SRC's convolution datapath.
    ///
    /// # Panics
    ///
    /// Panics if the result width would exceed 64 bits.
    pub fn mul_full(&self, rhs: &SFixed) -> SFixed {
        let w = self.width + rhs.width;
        assert!(w <= 64, "full-precision product exceeds 64 bits");
        SFixed::from_raw(self.raw * rhs.raw, w, self.frac_bits + rhs.frac_bits)
    }

    /// Rounds toward nearest (ties away from zero) to a narrower format.
    ///
    /// # Panics
    ///
    /// Panics if the target format is invalid or wider in fractional bits
    /// than the source (this helper only discards precision).
    pub fn round_to(&self, width: u32, frac_bits: u32) -> SFixed {
        assert!(frac_bits <= self.frac_bits, "round_to only narrows");
        let drop = self.frac_bits - frac_bits;
        let rounded = if drop == 0 {
            self.raw
        } else {
            let half = 1i64 << (drop - 1);
            let adj = if self.raw >= 0 { half } else { -half };
            (self.raw + adj) >> drop
        };
        SFixed::from_raw(rounded, width, frac_bits)
    }
}

impl fmt::Debug for SFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SFixed({}, Q{}.{})",
            self.to_f64(),
            self.width - self.frac_bits - 1,
            self.frac_bits
        )
    }
}

impl fmt::Display for SFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantise_and_back() {
        let c = SFixed::from_f64(0.25, 16, 15);
        assert_eq!(c.raw(), 1 << 13);
        assert_eq!(c.to_f64(), 0.25);
        let n = SFixed::from_f64(-0.25, 16, 15);
        assert_eq!(n.raw(), -(1 << 13));
    }

    #[test]
    fn saturation() {
        let c = SFixed::from_f64(10.0, 16, 15);
        assert_eq!(c.raw(), i16::MAX as i64);
        let n = SFixed::from_f64(-10.0, 16, 15);
        assert_eq!(n.raw(), i16::MIN as i64);
    }

    #[test]
    fn quantisation_error_bounded() {
        let fmt_w = 16;
        let fmt_f = 15;
        for i in 0..100 {
            let v = (i as f64) / 101.0 - 0.5;
            let q = SFixed::from_f64(v, fmt_w, fmt_f);
            assert!((q.to_f64() - v).abs() <= q.ulp() / 2.0 + 1e-12, "value {v}");
        }
    }

    #[test]
    fn full_precision_multiply() {
        let a = SFixed::from_f64(0.5, 16, 15);
        let b = SFixed::from_f64(-0.5, 16, 15);
        let p = a.mul_full(&b);
        assert_eq!(p.width(), 32);
        assert_eq!(p.frac_bits(), 30);
        assert_eq!(p.to_f64(), -0.25);
    }

    #[test]
    fn rounding() {
        let p = SFixed::from_raw(0b110, 8, 2); // 1.5
        let r = p.round_to(8, 0);
        assert_eq!(r.raw(), 2); // ties away from zero
        let n = SFixed::from_raw(-0b110, 8, 2); // -1.5
        assert_eq!(n.round_to(8, 0).raw(), -2);
        let exact = SFixed::from_raw(0b100, 8, 2); // 1.0
        assert_eq!(exact.round_to(8, 1).raw(), 0b10);
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        let _ = SFixed::from_f64(f64::NAN, 16, 15);
    }

    #[test]
    fn debug_format() {
        let c = SFixed::from_f64(0.5, 16, 15);
        assert_eq!(format!("{c:?}"), "SFixed(0.5, Q0.15)");
    }
}
