//! Const-generic unsigned integers with `sc_uint<W>` semantics.

use crate::{mask, Bv, MAX_WIDTH};
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Not, Shl, Shr, Sub};

/// An unsigned integer with exactly `W` bits (`1 <= W <= 64`).
///
/// Mirrors `sc_uint<W>`: all values are kept masked to `W` bits and all
/// arithmetic wraps modulo `2^W`. The width is part of the type, so mixing
/// widths is a compile error — exactly the property the paper's *type
/// refinement* step introduces into the behavioural model.
///
/// # Example
///
/// ```
/// use scflow_hwtypes::UInt;
///
/// let x = UInt::<4>::new(9);
/// assert_eq!((x << 1).value(), 2); // 18 mod 16
/// assert_eq!(x.bit(3), true);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UInt<const W: u32>(u64);

impl<const W: u32> UInt<W> {
    /// The number of bits, as a value.
    pub const WIDTH: u32 = W;

    /// Creates a value, masking to `W` bits (like assigning to `sc_uint<W>`).
    ///
    /// # Panics
    ///
    /// Panics if `W` is 0 or greater than 64 (checked once per
    /// instantiation).
    #[inline]
    pub fn new(value: u64) -> Self {
        assert!(W >= 1 && W <= MAX_WIDTH, "UInt width must be 1..=64");
        UInt(value & mask(W))
    }

    /// The maximum representable value, `2^W - 1`.
    #[inline]
    pub fn max_value() -> Self {
        UInt(mask(W))
    }

    /// The contained value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= W`.
    #[inline]
    pub fn bit(self, index: u32) -> bool {
        assert!(index < W, "bit {index} out of width {W}");
        (self.0 >> index) & 1 == 1
    }

    /// Returns the value with bit `index` set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= W`.
    #[inline]
    pub fn with_bit(self, index: u32, bit: bool) -> Self {
        assert!(index < W, "bit {index} out of width {W}");
        if bit {
            UInt(self.0 | (1 << index))
        } else {
            UInt(self.0 & !(1 << index))
        }
    }

    /// Extracts bits `[hi:lo]` into a (possibly narrower) `UInt<W2>` value.
    ///
    /// The result is masked to `W2` bits; `hi - lo + 1` should equal `W2`
    /// for a lossless extraction.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= W`.
    #[inline]
    pub fn range<const W2: u32>(self, hi: u32, lo: u32) -> UInt<W2> {
        assert!(hi >= lo && hi < W, "bad range [{hi}:{lo}] of {W}");
        UInt::<W2>::new(self.0 >> lo)
    }

    /// Resizes to a different width, truncating or zero-extending.
    #[inline]
    pub fn resize<const W2: u32>(self) -> UInt<W2> {
        UInt::<W2>::new(self.0)
    }

    /// Converts to a runtime-width bit vector.
    #[inline]
    pub fn to_bv(self) -> Bv {
        Bv::new(self.0, W)
    }

    /// Wrapping increment by one.
    #[inline]
    pub fn wrapping_inc(self) -> Self {
        UInt::new(self.0.wrapping_add(1))
    }

    /// Wrapping decrement by one.
    #[inline]
    pub fn wrapping_dec(self) -> Self {
        UInt::new(self.0.wrapping_sub(1))
    }
}

impl<const W: u32> From<UInt<W>> for u64 {
    fn from(v: UInt<W>) -> u64 {
        v.0
    }
}

impl<const W: u32> Add for UInt<W> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        UInt::new(self.0.wrapping_add(rhs.0))
    }
}

impl<const W: u32> Sub for UInt<W> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        UInt::new(self.0.wrapping_sub(rhs.0))
    }
}

impl<const W: u32> Mul for UInt<W> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        UInt::new(self.0.wrapping_mul(rhs.0))
    }
}

impl<const W: u32> BitAnd for UInt<W> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        UInt(self.0 & rhs.0)
    }
}

impl<const W: u32> BitOr for UInt<W> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        UInt(self.0 | rhs.0)
    }
}

impl<const W: u32> BitXor for UInt<W> {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        UInt(self.0 ^ rhs.0)
    }
}

impl<const W: u32> Not for UInt<W> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        UInt::new(!self.0)
    }
}

impl<const W: u32> Shl<u32> for UInt<W> {
    type Output = Self;
    #[inline]
    fn shl(self, amount: u32) -> Self {
        if amount >= 64 {
            UInt(0)
        } else {
            UInt::new(self.0 << amount)
        }
    }
}

impl<const W: u32> Shr<u32> for UInt<W> {
    type Output = Self;
    #[inline]
    fn shr(self, amount: u32) -> Self {
        if amount >= 64 {
            UInt(0)
        } else {
            UInt(self.0 >> amount)
        }
    }
}

impl<const W: u32> fmt::Debug for UInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{W}'d{}", self.0)
    }
}

impl<const W: u32> fmt::Display for UInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl<const W: u32> fmt::LowerHex for UInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const W: u32> fmt::Binary for UInt<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_on_construction() {
        assert_eq!(UInt::<4>::new(0x1F).value(), 0xF);
        assert_eq!(UInt::<64>::new(u64::MAX).value(), u64::MAX);
    }

    #[test]
    fn wrapping_arithmetic() {
        let m = UInt::<8>::max_value();
        assert_eq!((m + UInt::new(1)).value(), 0);
        assert_eq!((UInt::<8>::new(0) - UInt::new(1)).value(), 0xFF);
        assert_eq!((UInt::<8>::new(20) * UInt::new(20)).value(), 400 % 256);
    }

    #[test]
    fn inc_dec_wrap() {
        assert_eq!(UInt::<2>::new(3).wrapping_inc().value(), 0);
        assert_eq!(UInt::<2>::new(0).wrapping_dec().value(), 3);
    }

    #[test]
    fn bit_ops() {
        let v = UInt::<8>::new(0b1010_0101);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert_eq!(v.with_bit(1, true).value(), 0b1010_0111);
        assert_eq!(v.with_bit(0, false).value(), 0b1010_0100);
        assert_eq!((!v).value(), 0b0101_1010);
        assert_eq!((v & UInt::new(0x0F)).value(), 0b0101);
        assert_eq!((v | UInt::new(0x0F)).value(), 0b1010_1111);
        assert_eq!((v ^ UInt::new(0xFF)).value(), 0b0101_1010);
    }

    #[test]
    fn range_and_resize() {
        let v = UInt::<8>::new(0xA5);
        let hi: UInt<4> = v.range(7, 4);
        let lo: UInt<4> = v.range(3, 0);
        assert_eq!(hi.value(), 0xA);
        assert_eq!(lo.value(), 0x5);
        let wide: UInt<12> = v.resize();
        assert_eq!(wide.value(), 0xA5);
        let narrow: UInt<4> = v.resize();
        assert_eq!(narrow.value(), 0x5);
    }

    #[test]
    fn shifts_truncate() {
        let v = UInt::<4>::new(0b1001);
        assert_eq!((v << 1).value(), 0b0010);
        assert_eq!((v >> 1).value(), 0b0100);
        assert_eq!((v << 99).value(), 0);
    }

    #[test]
    fn to_bv_roundtrip() {
        let v = UInt::<12>::new(0x5A5);
        assert_eq!(v.to_bv().as_u64(), 0x5A5);
        assert_eq!(v.to_bv().width(), 12);
    }

    #[test]
    fn ordering_and_default() {
        assert!(UInt::<8>::new(3) < UInt::<8>::new(7));
        assert_eq!(UInt::<8>::default().value(), 0);
    }
}
