//! Four-valued logic (`0`, `1`, `X`, `Z`) for gate-level simulation.

use crate::Bv;
use std::fmt;

/// A four-valued logic level, mirroring `sc_logic` / IEEE 1164's core values.
///
/// * `Zero` / `One` — driven binary values,
/// * `X` — unknown (conflict or uninitialised),
/// * `Z` — high impedance (undriven).
///
/// Gate evaluation uses the usual pessimistic tables: any `X` or `Z` input
/// yields `X` unless a controlling value decides the output (e.g.
/// `0 AND X = 0`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Driven low.
    Zero,
    /// Driven high.
    One,
    /// Unknown.
    #[default]
    X,
    /// High impedance.
    Z,
}

#[allow(clippy::should_implement_trait)] // four-valued `not`, deliberately inherent
impl Logic {
    /// Converts a `bool` to a driven logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// `Some(bool)` when driven, `None` for `X`/`Z`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// `true` when the value is `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Four-valued AND: `0` is controlling.
    #[inline]
    pub fn and(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// Four-valued OR: `1` is controlling.
    #[inline]
    pub fn or(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }

    /// Four-valued XOR: any unknown input makes the output unknown.
    #[inline]
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// Four-valued NOT.
    #[inline]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Wired resolution of two drivers on the same net.
    ///
    /// `Z` yields to any driver; conflicting driven values resolve to `X`.
    #[inline]
    pub fn resolve(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (Z, v) | (v, Z) => v,
            (a, b) if a == b => a,
            _ => X,
        }
    }

    /// The character used in trace output (`0`, `1`, `x`, `z`).
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Debug for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A vector of four-valued logic levels (`sc_lv<W>` analogue), LSB first.
///
/// Used at the boundary between the two-valued RTL world ([`Bv`]) and the
/// four-valued gate-level simulator.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LogicVec {
    bits: Vec<Logic>,
}

impl LogicVec {
    /// Creates a vector of `width` unknown (`X`) bits.
    pub fn unknown(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::X; width],
        }
    }

    /// Creates a vector from a two-valued bit vector.
    pub fn from_bv(value: Bv) -> Self {
        let bits = (0..value.width()).map(|i| Logic::from_bool(value.get(i))).collect();
        LogicVec { bits }
    }

    /// The width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> Logic {
        self.bits[index]
    }

    /// Sets bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, value: Logic) {
        self.bits[index] = value;
    }

    /// `true` when every bit is driven (`0` or `1`).
    pub fn is_known(&self) -> bool {
        self.bits.iter().all(|b| b.is_known())
    }

    /// Converts to a two-valued vector if every bit is known.
    pub fn to_bv(&self) -> Option<Bv> {
        if self.bits.is_empty() || self.bits.len() > 64 {
            return None;
        }
        let mut raw = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) => raw |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(Bv::new(raw, self.bits.len() as u32))
    }

    /// Iterates over the bits, LSB first.
    pub fn iter(&self) -> std::slice::Iter<'_, Logic> {
        self.bits.iter()
    }
}

impl FromIterator<Logic> for LogicVec {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> Self {
        LogicVec {
            bits: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // MSB-first, like waveform viewers print vectors.
        write!(f, "{}'b", self.bits.len())?;
        for b in self.bits.iter().rev() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Logic::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(Z.and(One), X);
    }

    #[test]
    fn or_truth_table() {
        use Logic::*;
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(Zero.or(X), X);
        assert_eq!(Z.or(Zero), X);
    }

    #[test]
    fn xor_and_not() {
        use Logic::*;
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Z.not(), X);
        assert_eq!(Zero.not(), One);
    }

    #[test]
    fn resolution() {
        use Logic::*;
        assert_eq!(Z.resolve(One), One);
        assert_eq!(Zero.resolve(Z), Zero);
        assert_eq!(One.resolve(Zero), X);
        assert_eq!(One.resolve(One), One);
        assert_eq!(Z.resolve(Z), Z);
    }

    #[test]
    fn vec_roundtrip() {
        let v = Bv::new(0b1011, 4);
        let lv = LogicVec::from_bv(v);
        assert!(lv.is_known());
        assert_eq!(lv.to_bv(), Some(v));
        assert_eq!(format!("{lv:?}"), "4'b1011");
    }

    #[test]
    fn vec_with_unknowns() {
        let mut lv = LogicVec::unknown(3);
        assert!(!lv.is_known());
        assert_eq!(lv.to_bv(), None);
        lv.set(0, Logic::One);
        lv.set(1, Logic::Zero);
        lv.set(2, Logic::One);
        assert_eq!(lv.to_bv().map(|b| b.as_u64()), Some(0b101));
    }

    #[test]
    fn vec_collect() {
        let lv: LogicVec = [Logic::One, Logic::Zero].into_iter().collect();
        assert_eq!(lv.width(), 2);
        assert_eq!(lv.get(0), Logic::One);
    }
}
