//! Quickstart: convert a CD-rate (44.1 kHz) tone to DVD rate (48 kHz)
//! with the algorithmic sample-rate converter and check the signal
//! quality.
//!
//! ```text
//! cargo run --release -p scflow --example quickstart
//! ```

use scflow::prelude::*;

fn main() {
    // 0.5 s of a 1 kHz tone at CD rate.
    let cfg = SrcConfig::cd_to_dvd();
    let input = stimulus::sine(22_050, 1000.0, 44_100.0, 12_000.0);

    let mut src = AlgoSrc::new(&cfg);
    let output = src.process(&input);

    println!("sample-rate conversion {} Hz -> {} Hz", cfg.in_rate, cfg.out_rate);
    println!("  input samples:  {}", input.len());
    println!("  output samples: {}", output.len());
    println!(
        "  expected ratio: {:.4}, measured: {:.4}",
        f64::from(cfg.out_rate) / f64::from(cfg.in_rate),
        output.len() as f64 / input.len() as f64
    );

    // Quality: fit the 1 kHz tone in the output, report SNR (skip the
    // filter's settling samples).
    let settled = &output[200..];
    let snr = stimulus::snr_db(settled, 1000.0, 48_000.0);
    println!("  output SNR vs ideal 1 kHz tone: {snr:.1} dB");
    assert!(snr > 40.0, "conversion quality should exceed 40 dB");
    println!("done.");
}
