//! The flow is not SRC-specific: a second design — an 8-tap FIR
//! decimate-by-2 filter — taken through the same refinement chain:
//! software model → behavioural program → behavioural synthesis → RTL
//! synthesis → gates, with bit-accuracy checked at each artefact and the
//! same reports produced.
//!
//! ```text
//! cargo run --release -p scflow --example second_design
//! ```

use scflow::prelude::*;
use scflow_synth::beh::{synthesize_beh, BehOptions, ProgramBuilder};
use scflow_synth::rtl::{synthesize, SynthOptions};

const TAPS: [i16; 8] = [-12, 45, 210, 640, 640, 210, 45, -12]; // Q1.10-ish lowpass
const FRAC: u32 = 10;

/// Software golden model: y[n] = sum taps[k] * x[2n - k].
fn golden(input: &[i16]) -> Vec<i16> {
    let mut hist = [0i16; 8];
    let mut out = Vec::new();
    for (n, &s) in input.iter().enumerate() {
        hist.rotate_right(1);
        hist[0] = s;
        if n % 2 == 1 {
            let acc: i64 = TAPS
                .iter()
                .zip(hist.iter())
                .map(|(&c, &x)| i64::from(c) * i64::from(x))
                .sum();
            out.push((acc >> FRAC) as i16);
        }
    }
    out
}

/// The same filter as a behavioural program (handshaked I/O).
fn decimator_program() -> scflow_synth::beh::BehProgram {
    let mut p = ProgramBuilder::new("fir_decim2");
    let i = p.input("in_sample", 16);
    let o = p.output("out_sample", 16);
    let rom = p.memory(
        "taps",
        16,
        TAPS.iter().map(|&c| Bv::from_i64(i64::from(c), 16)).collect(),
    );
    let hist = p.memory("hist", 16, vec![Bv::zero(16); 8]);
    let x = p.var("x", 16);
    let wp = p.var("wp", 3);
    let k = p.var("k", 4);
    let acc = p.var("acc", 30);

    // Consume two input samples per output.
    for _ in 0..2 {
        p.read(x, i);
        p.mem_write(hist, p.v(wp), p.v(x));
        let inc = p.v(wp).add(p.lit(1, 3));
        p.assign(wp, inc);
    }
    // MAC over the 8 most recent samples (newest first).
    p.assign(acc, p.lit(0, 30));
    p.assign(k, p.lit(0, 4));
    let cond = p.v(k).ne(p.lit(8, 4));
    p.while_loop(cond, |b| {
        let addr = b.v(wp).sub(b.lit(1, 3)).sub(b.v(k).slice(2, 0));
        let prod = b
            .mem_read(hist, addr)
            .sext(30)
            .mul_signed(b.mem_read(rom, b.v(k).slice(2, 0)).sext(30));
        let sum = b.v(acc).add(prod);
        b.assign(acc, sum);
        let inc = b.v(k).add(b.lit(1, 4));
        b.assign(k, inc);
    });
    let y = p.v(acc).sar(p.lit(u64::from(FRAC), 4)).slice(15, 0);
    p.write(o, y);
    p.build()
}

fn check(label: &str, got: &[i16], want: &[i16]) {
    assert_eq!(got, want, "{label} diverged");
    println!("  [bit-accurate] {label}");
}

fn main() {
    let input: Vec<i16> = (0..64).map(|n| ((n * 389) % 4001) as i16 - 2000).collect();
    let want = golden(&input);
    println!(
        "== second design: 8-tap FIR decimate-by-2 ({} in -> {} out) ==\n",
        input.len(),
        want.len()
    );

    // Behavioural synthesis -> RTL simulation.
    let beh = synthesize_beh(&decimator_program(), &BehOptions::default()).expect("beh synth");
    println!(
        "behavioural synthesis: {} states, {} registers",
        beh.report.states, beh.report.registers
    );
    let mut rtl_sim = RtlSim::new(&beh.module);
    let (rtl_out, _) = run_handshake(&mut rtl_sim, &input, want.len(), 100_000);
    check("generated RTL", &rtl_out, &want);

    // RTL synthesis -> gate simulation.
    let lib = CellLibrary::generic_025u();
    let result = synthesize(&beh.module, &lib, &SynthOptions::default()).expect("rtl synth");
    println!(
        "gate level: {} cells, {} flops, critical path {} ps (40 ns clock: {})",
        result.area.cell_count(),
        result.netlist.flop_count(),
        result.timing.critical_path_ps,
        if result.timing.meets(40_000) { "meets" } else { "VIOLATES" }
    );
    let mut gate_sim = GateSim::new(&result.netlist, &lib);
    gate_sim.poke("scan_en", Bv::zero(1));
    gate_sim.poke("scan_in", Bv::zero(1));
    let (gate_out, _) = run_handshake(&mut gate_sim, &input, want.len(), 200_000);
    check("gate netlist", &gate_out, &want);

    println!("\n{}", result.area);
}
