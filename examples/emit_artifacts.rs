//! Emits the flow's tangible artefacts to `target/scflow-artifacts/`:
//!
//! * the intermediate **RTL Verilog** of the optimised SRC (what the
//!   paper's SystemC Compiler handed to Design Compiler),
//! * the behavioural-synthesis **FSM + datapath Verilog**,
//! * a **VCD trace** of the clocked behavioural model's handshake signals,
//! * a gate-level **area report** per design.
//!
//! ```text
//! cargo run --release -p scflow --example emit_artifacts
//! ```

use scflow::models::beh::{synthesize_beh_src, BehVariant};
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::{stimulus, SrcConfig};
use scflow_gate::CellLibrary;
use scflow_kernel::{Kernel, SimTime};
use scflow_synth::rtl::{synthesize, SynthOptions};
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/scflow-artifacts");
    fs::create_dir_all(out)?;
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();

    // 1. RTL Verilog of the optimised SRC.
    let rtl = build_rtl_src(&cfg, RtlVariant::Optimised)?;
    fs::write(out.join("src_rtl_opt.v"), rtl.to_verilog())?;

    // 2. Behavioural-synthesis output (FSM + datapath) as Verilog.
    let beh = synthesize_beh_src(&cfg, BehVariant::Optimised)?;
    fs::write(out.join("src_beh_opt_fsm.v"), beh.module.to_verilog())?;

    // 3. A VCD of the behavioural model's handshake activity.
    let vcd = trace_handshake(&cfg);
    fs::write(out.join("beh_handshake.vcd"), vcd)?;

    // 4. Gate-level structural Verilog (the Figure 9 artefact) and area
    //    reports.
    let mut report = String::new();
    for (name, module) in [("src_rtl_opt", &rtl), ("src_beh_opt", &beh.module)] {
        let r = synthesize(module, &lib, &SynthOptions::default())?;
        fs::write(
            out.join(format!("{name}_gates.v")),
            r.netlist.to_structural_verilog(),
        )?;
        report.push_str(&format!("== {name} ==\n{}\n\n", r.area));
    }
    fs::write(out.join("area_reports.txt"), &report)?;

    // 5. An RTL waveform of the optimised SRC starting up.
    {
        use scflow::models::harness::run_handshake;
        let mut sim = scflow_rtl::RtlSim::new(&rtl);
        for port in ["dbg_state", "out_sample", "in_sample_ready", "out_sample_valid"] {
            sim.watch_port(port);
        }
        let input = stimulus::sine(8, 1000.0, f64::from(cfg.in_rate), 9000.0);
        let _ = run_handshake(&mut sim, &input, 6, 2_000);
        fs::write(out.join("src_rtl_startup.vcd"), sim.waveform_vcd(40_000))?;
    }

    println!("artifacts written to {}:", out.display());
    for entry in fs::read_dir(out)? {
        let e = entry?;
        println!("  {:>8} bytes  {}", e.metadata()?.len(), e.file_name().to_string_lossy());
    }
    Ok(())
}

/// Runs a short clocked simulation with the handshake signals traced.
fn trace_handshake(cfg: &SrcConfig) -> String {
    let kernel = Kernel::new();
    let trace = kernel.trace();
    let clk = kernel.clock("clk", SimTime::from_ns(40));
    let in_valid = kernel.signal("in_valid", false);
    let in_ready = kernel.signal("in_ready", false);
    let out_valid = kernel.signal("out_valid", false);
    for s in [&in_valid, &in_ready, &out_valid] {
        s.attach_trace(&trace);
    }

    // A miniature handshake episode: producer offers two samples, a toy
    // consumer FSM accepts them with a 3-cycle service time.
    kernel.spawn("producer", {
        let (k, clk, in_valid, in_ready) = (
            kernel.clone(),
            clk.clone(),
            in_valid.clone(),
            in_ready.clone(),
        );
        let input = stimulus::sine(2, 1000.0, f64::from(cfg.in_rate), 9000.0);
        async move {
            for _s in input {
                in_valid.write(true);
                loop {
                    k.wait(clk.posedge()).await;
                    if in_ready.read() {
                        break;
                    }
                }
                in_valid.write(false);
                k.wait(clk.posedge()).await;
            }
        }
    });
    kernel.spawn("server", {
        let (k, clk, in_valid, in_ready, out_valid) = (
            kernel.clone(),
            clk.clone(),
            in_valid.clone(),
            in_ready.clone(),
            out_valid.clone(),
        );
        async move {
            loop {
                in_ready.write(true);
                loop {
                    k.wait(clk.posedge()).await;
                    if in_valid.read() {
                        break;
                    }
                }
                in_ready.write(false);
                for _ in 0..3 {
                    k.wait(clk.posedge()).await;
                }
                out_valid.write(true);
                k.wait(clk.posedge()).await;
                out_valid.write(false);
            }
        }
    });
    kernel.run_for(SimTime::from_ns(40 * 24));
    trace.to_vcd()
}
