//! The complete refinement-driven design flow, end to end — the paper's
//! evaluation in one run:
//!
//! 1. generate golden vectors from the C++-style algorithmic model,
//! 2. re-validate **bit accuracy** of every refinement level
//!    (channel, refined channel, clocked behavioural, clocked RTL, all
//!    synthesisable variants),
//! 3. synthesise every design variant to gates,
//! 4. print the Figure 10 area table and the timing closure check.
//!
//! ```text
//! cargo run --release -p scflow --example full_flow
//! ```

use scflow::models::beh::run_beh_model;
use scflow::models::channel::run_channel_model;
use scflow::models::refined::run_refined_model;
use scflow::models::rtl::run_rtl_model;
use scflow::prelude::*;

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    println!("== refinement flow: {} Hz -> {} Hz ==\n", cfg.in_rate, cfg.out_rate);

    // Golden vectors from the algorithmic model.
    let input = stimulus::sweep(200, 100.0, 18_000.0, 44_100.0, 9_000.0);
    let golden = GoldenVectors::generate(&cfg, input.clone());
    println!(
        "golden model: {} inputs -> {} outputs",
        golden.input.len(),
        golden.output.len()
    );

    // Re-validate each kernel-based refinement step.
    type Step<'a> = (&'a str, Box<dyn Fn() -> Vec<i16> + 'a>);
    let steps: [Step; 4] = [
        (
            "SystemC hierarchical channel",
            Box::new(|| run_channel_model(&cfg, &input).outputs),
        ),
        (
            "refined channel (3 submodules)",
            Box::new(|| run_refined_model(&cfg, &input).outputs),
        ),
        (
            "clocked behavioural model",
            Box::new(|| run_beh_model(&cfg, &input).outputs),
        ),
        (
            "clocked RTL model (2-process)",
            Box::new(|| run_rtl_model(&cfg, &input).outputs),
        ),
    ];
    for (name, run) in steps {
        match compare_bit_accurate(&golden.output, &run()) {
            Ok(()) => println!("  [bit-accurate] {name}"),
            Err(m) => panic!("{name} diverged: {m}"),
        }
    }

    // Synthesisable levels, validated by interpreted RTL simulation.
    validate_all_levels(&cfg, &input).expect("synthesisable levels bit-accurate");
    println!("  [bit-accurate] all synthesisable variants (BEH x2, RTL x3, VHDL ref)\n");

    // Synthesis and the Figure 10 table.
    let lib = CellLibrary::generic_025u();
    let fig10 = run_area_flow(&cfg, &lib).expect("synthesis");
    println!("== Figure 10: area relative to the VHDL reference ==\n{fig10}");

    println!("== timing at the 40 ns clock ==");
    for row in &fig10.rows {
        println!(
            "  {:<12} {:>6} ps  {}",
            row.design,
            row.critical_path_ps,
            if row.critical_path_ps + 150 <= 40_000 {
                "meets"
            } else {
                "VIOLATES"
            }
        );
    }
}
