//! A walkthrough client for the `scflow-serve` JSON-lines protocol.
//!
//! Embeds the server in-process (the protocol is transport-agnostic:
//! `Server::handle_line` is exactly what the stdio and TCP loops call
//! per line) and drives two concurrent sessions of the same design on
//! different engines — compiled RTL and the 64-lane bit-parallel gate
//! engine — through a batched stimulus sweep, then prints their
//! coverage and metrics replies side by side.
//!
//! Run with: `cargo run --example serve_client`

use scflow::prelude::ServeOptions;
use scflow_serve::Server;

fn main() {
    let opts = ServeOptions::default();
    let server = Server::new(&opts);
    let rpc = |req: String| -> String {
        println!("->  {req}");
        let reply = server.handle_line(&req);
        println!("<-  {reply}");
        reply
    };

    println!("# handshake");
    rpc(r#"{"id":1,"op":"ping"}"#.to_owned());

    println!("\n# two sessions, same design, different refinement levels");
    let rtl = rpc(
        r#"{"id":2,"op":"open_session","design":"rtl_opt","engine":"rtl.compiled","coverage":true}"#
            .to_owned(),
    );
    let gate = rpc(
        r#"{"id":3,"op":"open_session","design":"rtl_opt","engine":"gate.bitpar","coverage":true}"#
            .to_owned(),
    );
    let rtl = field(&rtl, "session");
    let gate = field(&gate, "session");

    println!("\n# sequential batched sweep on the RTL session");
    let items: Vec<String> = (0u64..8)
        .map(|i| {
            format!(
                concat!(
                    r#"{{"pokes":[{{"port":"in_sample","value":"0x{:x}","width":16}},"#,
                    r#"{{"port":"in_sample_valid","value":1,"width":1}},"#,
                    r#"{{"port":"out_sample_ready","value":1,"width":1}}],"cycles":4}}"#
                ),
                i * 257
            )
        })
        .collect();
    rpc(format!(
        r#"{{"id":4,"op":"step_batch","session":"{rtl}","items":[{}],"read":["out_sample","out_sample_valid"]}}"#,
        items.join(",")
    ));

    println!("\n# the same sweep as one 8-lane dispatch on the gate session");
    rpc(format!(
        r#"{{"id":5,"op":"step_batch","session":"{gate}","mode":"lanes","items":[{}],"read":["out_sample","out_sample_valid"]}}"#,
        items.join(",")
    ));

    println!("\n# single poke / step / peek still work per request");
    rpc(format!(
        r#"{{"id":6,"op":"poke","session":"{rtl}","port":"in_sample","value":"0x7fff","width":16}}"#
    ));
    rpc(format!(r#"{{"id":7,"op":"step","session":"{rtl}","cycles":2}}"#));
    rpc(format!(
        r#"{{"id":8,"op":"peek","session":"{rtl}","port":"out_sample"}}"#
    ));

    println!("\n# coverage per session");
    rpc(format!(r#"{{"id":9,"op":"coverage","session":"{rtl}"}}"#));
    rpc(format!(r#"{{"id":10,"op":"coverage","session":"{gate}"}}"#));

    println!("\n# engine metrics, then server-wide metrics");
    rpc(format!(r#"{{"id":11,"op":"metrics","session":"{gate}"}}"#));
    rpc(r#"{"id":12,"op":"server_metrics","deterministic":true}"#.to_owned());

    println!("\n# teardown");
    rpc(format!(r#"{{"id":13,"op":"close","session":"{rtl}"}}"#));
    rpc(format!(r#"{{"id":14,"op":"close","session":"{gate}"}}"#));
    rpc(r#"{"id":15,"op":"shutdown"}"#.to_owned());
}

/// Pulls a string field out of a reply line (good enough for a demo —
/// real clients parse the JSON).
fn field(reply: &str, key: &str) -> String {
    let tag = format!("\"{key}\":\"");
    let start = reply.find(&tag).expect("field present") + tag.len();
    let end = reply[start..].find('"').expect("terminated") + start;
    reply[start..end].to_owned()
}
