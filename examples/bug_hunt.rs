//! The paper's bug-escape anecdote, reproduced end to end.
//!
//! "During our evaluation it even happened that a bug in the golden model
//! was refined down to Gate-level and was discovered during Gate-level
//! simulation... When the memory for the buffer was replaced by an
//! automatically generated simulation model (that included a check for
//! valid addresses), the bug became obvious."
//!
//! This example carries the injected ring-buffer address bug through the
//! flow: every functional simulation stays bit-accurate (the invalid
//! address wraps onto the correct cell), and only the gate-level checking
//! memory model reports it.
//!
//! ```text
//! cargo run --release -p scflow --example bug_hunt
//! ```

use scflow::algo::AlgoSrc;
use scflow::models::harness::run_handshake;
use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::verify::{compare_bit_accurate, GoldenVectors};
use scflow::{stimulus, SrcConfig};
use scflow_gate::{CellLibrary, GateSim};
use scflow_rtl::RtlSim;
use scflow_synth::rtl::{synthesize, SynthOptions};

fn main() {
    // The corner case needs downsampling (two consumes per output).
    let cfg = SrcConfig::dvd_to_cd();
    let input = stimulus::noise(600, 8_000, 20_040_731);
    let golden = GoldenVectors::generate(&cfg, input.clone());
    println!("== hunting the golden-model buffer bug ({} outputs) ==\n", golden.len());

    // 1. The buggy golden model simulates bit-identically...
    let mut buggy_algo = AlgoSrc::new(&cfg).with_buffer_bug();
    let algo_out = buggy_algo.process(&input);
    compare_bit_accurate(&golden.output, &algo_out).expect("algorithmic level");
    let invalid = buggy_algo
        .raw_indices_seen()
        .iter()
        .filter(|&&i| i >= SrcConfig::BUFFER as u32)
        .count();
    println!("algorithmic model: bit-accurate ({invalid} silent out-of-range raw indices)");

    // 2. ...and so does the buggy RTL in interpreted RTL simulation...
    let buggy_rtl = build_rtl_src(&cfg, RtlVariant::OptimisedBuggy).expect("rtl");
    let mut rtl_sim = RtlSim::new(&buggy_rtl);
    let (rtl_out, _) = run_handshake(
        &mut rtl_sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    compare_bit_accurate(&golden.output, &rtl_out).expect("RTL level");
    println!("RTL simulation:    bit-accurate (no address checks — nothing visible)");

    // 3. ...and even at gate level the *data* is still right...
    let lib = CellLibrary::generic_025u();
    let netlist = synthesize(&buggy_rtl, &lib, &SynthOptions::default())
        .expect("synthesis")
        .netlist;
    let mut gate_sim = GateSim::new(&netlist, &lib);
    let (gate_out, cycles) = run_handshake(
        &mut gate_sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    compare_bit_accurate(&golden.output, &gate_out).expect("gate level");
    println!("gate simulation:   bit-accurate over {cycles} cycles");

    // 4. ...but the generated checking memory model catches the access.
    let violations = gate_sim.violations();
    println!(
        "\nchecking memory model: {} invalid accesses detected",
        violations.len()
    );
    let first = violations.first().expect("the corner case must fire");
    println!(
        "  first: memory `{}`, address {} (buffer has {} words), cycle {}",
        first.memory,
        first.address,
        SrcConfig::BUFFER,
        first.cycle
    );
    assert!(violations.iter().all(|v| v.memory == "in_buf"));

    // Control: the fixed design is clean.
    let clean_rtl = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let clean_netlist = synthesize(&clean_rtl, &lib, &SynthOptions::default())
        .expect("synthesis")
        .netlist;
    let mut clean_sim = GateSim::new(&clean_netlist, &lib);
    let (clean_out, _) = run_handshake(
        &mut clean_sim,
        &golden.input,
        golden.len(),
        scflow::flow::cycle_budget(golden.len()),
    );
    compare_bit_accurate(&golden.output, &clean_out).expect("clean gate level");
    assert!(clean_sim.violations().is_empty());
    println!("\ncontrol (fixed design): 0 violations — the check isolates the real bug.");
}
