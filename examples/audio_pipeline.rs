//! A car-multimedia audio pipeline — the application domain of the
//! paper's design: stereo material from different sources (CD 44.1 kHz,
//! broadcast 32 kHz) converted to the DVD system rate (48 kHz), each
//! channel through its own SRC core, with signal quality measured at each
//! hop.
//!
//! ```text
//! cargo run --release -p scflow --example audio_pipeline
//! ```

use scflow::algo::{AlgoSrc, StereoSrc};
use scflow::{stimulus, SrcConfig};

fn quality(label: &str, samples: &[i16], freq: f64, rate: f64) {
    // Skip the filter's settling transient, but keep at least half the
    // stream so short workloads still measure something.
    let skip = 300.min(samples.len() / 2);
    let settled = &samples[skip..];
    let snr = stimulus::snr_db(settled, freq, rate);
    println!("  {label:<28} {:>7} samples, SNR {snr:>6.1} dB", samples.len());
}

fn main() {
    println!("== car multimedia pipeline: all sources to 48 kHz ==\n");

    // Source 1: CD (44.1 kHz) — stereo test tones, 0.4 s.
    let cd_l = stimulus::sine(17_640, 997.0, 44_100.0, 11_000.0);
    let cd_r = stimulus::sine(17_640, 1_499.0, 44_100.0, 11_000.0);
    let mut cd_src = StereoSrc::new(&SrcConfig::cd_to_dvd());
    let (cd48_l, cd48_r) = cd_src.process(&cd_l, &cd_r);
    println!("CD 44.1 kHz -> 48 kHz");
    quality("left (997 Hz)", &cd48_l, 997.0, 48_000.0);
    quality("right (1499 Hz)", &cd48_r, 1_499.0, 48_000.0);

    // Source 2: broadcast (32 kHz) — mono speech-band tone.
    let dab = stimulus::sine(12_800, 440.0, 32_000.0, 9_000.0);
    let mut dab_src = AlgoSrc::new(&SrcConfig::broadcast_to_dvd());
    let dab48 = dab_src.process(&dab);
    println!("\nbroadcast 32 kHz -> 48 kHz");
    quality("mono (440 Hz)", &dab48, 440.0, 48_000.0);

    // Round trip: DVD -> CD -> DVD, quality after two conversions.
    let dvd = stimulus::sine(19_200, 1_000.0, 48_000.0, 11_000.0);
    let mut down = AlgoSrc::new(&SrcConfig::dvd_to_cd());
    let cd = down.process(&dvd);
    let mut up = AlgoSrc::new(&SrcConfig::cd_to_dvd());
    let back = up.process(&cd);
    println!("\nround trip 48 kHz -> 44.1 kHz -> 48 kHz");
    quality("after downsampling", &cd, 1_000.0, 44_100.0);
    quality("after round trip", &back, 1_000.0, 48_000.0);

    let snr = stimulus::snr_db(&back[300..], 1_000.0, 48_000.0);
    assert!(snr > 35.0, "round-trip SNR degraded too far: {snr:.1} dB");
    println!("\npipeline quality targets met.");
}
