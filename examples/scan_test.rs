//! What the scan chain's silicon pays for: manufacturing test.
//!
//! The paper includes the scan chain in every reported area ("a scan
//! chain, however, is included in all designs"). This example runs a
//! scan-based stuck-at test campaign on the synthesised SRC: random
//! patterns are shifted through the chain, one functional cycle is
//! captured, and the response signature is compared against the fault-free
//! circuit for a sample of injected faults.
//!
//! ```text
//! cargo run --release -p scflow --example scan_test
//! ```

use scflow::models::rtl::{build_rtl_src, RtlVariant};
use scflow::SrcConfig;
use scflow_gate::fault::{all_fault_sites, fault_coverage, random_patterns};
use scflow_gate::CellLibrary;
use scflow_synth::rtl::{synthesize, SynthOptions};

fn main() {
    let cfg = SrcConfig::cd_to_dvd();
    let lib = CellLibrary::generic_025u();
    let module = build_rtl_src(&cfg, RtlVariant::Optimised).expect("rtl");
    let netlist = synthesize(&module, &lib, &SynthOptions::default())
        .expect("synthesis")
        .netlist;
    println!(
        "DUT: {} — {} cells, {} scan flops",
        netlist.name(),
        netlist.instances().len(),
        netlist.flop_count()
    );

    // Sample the fault list (a full campaign runs the same loop over all
    // faults; the sample keeps the example fast).
    let all = all_fault_sites(&netlist);
    let sampled: Vec<_> = all.iter().step_by(97).copied().collect();
    let patterns = random_patterns(&netlist, 24, 0xC0FFEE);
    println!(
        "injecting {} of {} single-stuck-at faults, {} random scan patterns",
        sampled.len(),
        all.len(),
        patterns.len()
    );

    let result = fault_coverage(&netlist, &lib, &sampled, &patterns);
    println!(
        "detected {}/{} -> {:.1}% sampled fault coverage",
        result.detected,
        result.total,
        result.coverage_pct()
    );
    assert!(
        result.coverage_pct() > 50.0,
        "random patterns should catch most sampled faults"
    );
    println!("scan-test campaign complete.");
}
